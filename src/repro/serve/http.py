"""Thin stdlib HTTP front-end over a :class:`~repro.serve.PoolManager`.

Endpoints (JSON in, JSON out)::

    POST /v1/jobs              submit {"kind": "pmaxt"|"pcor", "data": [[..]],
                               "labels": [..], "params": {..}, "priority": 0,
                               "timeout": null} -> 202 {"id": .., "state": ..}
    GET  /v1/jobs/<id>         poll; terminal success includes "result"
    POST /v1/jobs/<id>/cancel  withdraw a queued job
    GET  /healthz              200 {"status": "ok"} while a healthy pool exists
    GET  /statsz               pool occupancy, queue depth, cache hit rate,
                               jobs/s (PoolManager.stats())

Backpressure: a full admission queue turns into ``429 Too Many Requests``
with a JSON error body — clients retry after the backlog drains.  Invalid
requests are ``400``, unknown jobs/paths ``404``.

The server is :class:`http.server.ThreadingHTTPServer` — one thread per
in-flight request, which is plenty for a front-end whose heavy work
happens on the manager's pool runners.  Results serialise through
``ServiceJob.to_dict``; Python's JSON float round-trip is exact for
finite doubles, so a pmaxT result fetched over HTTP is bit-identical to
the direct ``pmaxT()`` return (asserted end-to-end by the CI smoke job).
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..errors import DataError, OptionError, QueueFullError, ServiceError
from .jobs import JobSpec
from .manager import PoolManager

__all__ = ["make_server", "serve_forever"]

#: Request body size cap (100 MB of JSON ~ a 6500x1000 float64 matrix).
_MAX_BODY = 100 * 1024 * 1024

#: Job kinds accepted over the wire (the raw-callable kind is not).
_HTTP_KINDS = ("pmaxt", "pcor")


class _ServiceHandler(BaseHTTPRequestHandler):
    """One request; the manager lives on the server object."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    # -- plumbing ----------------------------------------------------------

    @property
    def manager(self) -> PoolManager:
        return self.server.manager  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if getattr(self.server, "verbose", False):  # pragma: no cover
            super().log_message(format, *args)

    def _reply(self, code: int, payload: dict) -> None:
        body = json.dumps(payload).encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, code: int, message: str, **extra) -> None:
        self._reply(code, {"error": message, **extra})

    def _read_json(self) -> dict | None:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            self._error(400, "a JSON request body is required")
            return None
        if length > _MAX_BODY:
            self._error(413, f"request body exceeds {_MAX_BODY} bytes")
            return None
        try:
            doc = json.loads(self.rfile.read(length))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            self._error(400, f"invalid JSON body: {exc}")
            return None
        if not isinstance(doc, dict):
            self._error(400, "the request body must be a JSON object")
            return None
        return doc

    # -- routes ------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        if self.path == "/healthz":
            if self.manager.healthy():
                self._reply(200, {"status": "ok"})
            else:
                self._reply(503, {"status": "unhealthy"})
        elif self.path == "/statsz":
            self._reply(200, self.manager.stats())
        elif self.path.startswith("/v1/jobs/"):
            job_id = self.path[len("/v1/jobs/") :]
            job = self.manager.job(job_id)
            if job is None:
                self._error(404, f"unknown job {job_id!r}")
            else:
                self._reply(200, job.to_dict())
        else:
            self._error(404, f"unknown path {self.path!r}")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        if self.path == "/v1/jobs":
            self._submit()
        elif self.path.startswith("/v1/jobs/") and self.path.endswith("/cancel"):
            job_id = self.path[len("/v1/jobs/") : -len("/cancel")]
            job = self.manager.job(job_id)
            if job is None:
                self._error(404, f"unknown job {job_id!r}")
            else:
                self._reply(200, {"id": job.id, "cancelled": job.cancel(), "state": job.state})
        else:
            self._error(404, f"unknown path {self.path!r}")

    def _submit(self) -> None:
        doc = self._read_json()
        if doc is None:
            return
        kind = doc.get("kind", "pmaxt")
        if kind not in _HTTP_KINDS:
            self._error(
                400,
                f"unknown job kind {kind!r}; expected one of {', '.join(_HTTP_KINDS)}",
            )
            return
        params = doc.get("params", {})
        if not isinstance(params, dict):
            self._error(400, "params must be a JSON object")
            return
        spec = JobSpec(
            kind=kind,
            data=doc.get("data"),
            labels=doc.get("labels"),
            params=params,
            priority=int(doc.get("priority", 0)),
            timeout=doc.get("timeout"),
        )
        try:
            job = self.manager.submit(spec)
        except QueueFullError as exc:
            self._error(429, str(exc), depth=exc.depth, limit=exc.limit)
        except (OptionError, DataError, ValueError, TypeError) as exc:
            self._error(400, str(exc))
        except ServiceError as exc:
            self._error(503, str(exc))
        else:
            self._reply(202, {"id": job.id, "state": job.state})


def make_server(
    manager: PoolManager, host: str = "127.0.0.1", port: int = 0
) -> ThreadingHTTPServer:
    """Bind the front-end (``port=0`` picks a free port; see
    ``server.server_address``).  The caller owns both lifetimes: run
    ``serve_forever()`` (or :func:`serve_forever` below for the signal
    handling), then ``shutdown()`` the server and ``close()`` the manager.
    """
    server = ThreadingHTTPServer((host, port), _ServiceHandler)
    server.daemon_threads = True
    server.manager = manager  # type: ignore[attr-defined]
    return server


def serve_forever(manager: PoolManager, host: str = "127.0.0.1", port: int = 8071) -> None:
    """Blocking convenience loop for the CLI: serve until interrupted."""
    server = make_server(manager, host, port)
    addr = server.server_address
    print(
        f"repro-serve listening on http://{addr[0]}:{addr[1]} "
        f"(pools={manager.stats()['pools']}, ranks={manager.ranks})"
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    finally:
        server.shutdown()
        server.server_close()
        manager.close()
