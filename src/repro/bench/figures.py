"""Regenerate the paper's figures.

* **Figure 2** — how permutations are distributed among the available
  processes: rendered as the rank → permutation-range map produced by the
  *real* partition code (:mod:`repro.core.partition`), using the paper's
  own illustration numbers (23 permutations over 3 processes) by default.
* **Figure 3** — pmaxT speed-up (log–log) on the five platforms against the
  optimal line: the series are computed from the simulated profile tables
  and rendered both as a data table and as an ASCII log–log plot.

CLI::

    python -m repro.bench.figures             # both figures
    python -m repro.bench.figures --figure 3
"""

from __future__ import annotations

import argparse
import math

from ..core.partition import partition_permutations
from .paper import PROFILE_TABLES
from .tables import profile_table_rows

__all__ = [
    "render_figure2",
    "speedup_series",
    "render_figure3",
    "main",
]


def render_figure2(nperm: int = 23, nranks: int = 3) -> str:
    """Render the permutation-distribution scheme of paper Figure 2.

    Permutations are shown 1-based like the paper's drawing: permutation 1
    is the observed labelling, owned by the master; every other process
    skips it and forwards its generator to its own chunk.
    """
    plan = partition_permutations(nperm, nranks)
    lines = [
        f"Figure 2 — distribution of {nperm} permutations over "
        f"{nranks} processes",
        f"{'serial':>8}: " + " ".join(str(i + 1) for i in range(nperm)),
    ]
    for chunk in plan.chunks:
        cells = []
        if not chunk.includes_observed:
            cells.append("1(skip)")
        cells.extend(str(i + 1) for i in range(chunk.start, chunk.stop))
        marker = " <- master, owns the observed permutation" \
            if chunk.includes_observed else ""
        lines.append(f"  rank {chunk.rank}: " + " ".join(cells) + marker)
    lines.append(
        "  invariant: chunks are disjoint and cover the serial sequence "
        f"exactly (sum of counts = {sum(c.count for c in plan.chunks)})"
    )
    return "\n".join(lines)


def speedup_series(kind: str = "total") -> dict[str, list[tuple[int, float]]]:
    """Speed-up series per platform for Figure 3.

    Parameters
    ----------
    kind:
        ``"total"`` (the paper's Figure 3 uses total execution times) or
        ``"kernel"``.

    Returns
    -------
    dict
        ``platform -> [(procs, speedup), ...]`` plus an ``"optimal"``
        series covering the full process range.
    """
    if kind not in ("total", "kernel"):
        raise ValueError(f"kind must be 'total' or 'kernel', got {kind!r}")
    series: dict[str, list[tuple[int, float]]] = {}
    max_procs = 1
    for name in PROFILE_TABLES:
        rows = profile_table_rows(name)
        pick = (lambda r: r.speedup_total) if kind == "total" \
            else (lambda r: r.speedup_kernel)
        series[name] = [(r.procs, pick(r)) for r in rows]
        max_procs = max(max_procs, rows[-1].procs)
    series["optimal"] = [(p, float(p))
                         for p in _powers_of_two_up_to(max_procs)]
    return series


def _powers_of_two_up_to(n: int) -> list[int]:
    out = [1]
    while out[-1] * 2 <= n:
        out.append(out[-1] * 2)
    return out


def render_figure3(kind: str = "total", width: int = 64,
                   height: int = 20) -> str:
    """ASCII log–log rendering of the Figure 3 speed-up curves."""
    series = speedup_series(kind)
    max_p = max(p for pts in series.values() for p, _ in pts)
    max_s = max(s for pts in series.values() for _, s in pts)
    lx = math.log10(max_p)
    ly = math.log10(max_s)

    glyphs = {"optimal": ".", "hector": "H", "ecdf": "E", "ec2": "A",
              "ness": "N", "quadcore": "Q"}
    grid = [[" "] * (width + 1) for _ in range(height + 1)]
    for name, pts in series.items():
        g = glyphs.get(name, "?")
        for p, s in pts:
            x = round(math.log10(p) / lx * width) if lx > 0 else 0
            y = round(math.log10(max(s, 1.0)) / ly * height) if ly > 0 else 0
            grid[height - y][x] = g

    lines = [
        f"Figure 3 — pmaxT speed-up ({kind} execution times), log–log",
        f"  speedup (1..{max_s:.0f}) vertical, process count (1..{max_p}) "
        "horizontal",
    ]
    lines += ["  |" + "".join(row) for row in grid]
    lines.append("  +" + "-" * (width + 1))
    lines.append(
        "  legend: . optimal   H HECToR   E ECDF   A Amazon EC2   "
        "N Ness   Q quad-core"
    )
    lines.append("")
    lines.append(f"  {'procs':>6} " + " ".join(
        f"{name:>9}" for name in ("optimal", "hector", "ecdf", "ec2",
                                  "ness", "quadcore")))
    all_procs = sorted({p for pts in series.values() for p, _ in pts})
    lookup = {name: dict(pts) for name, pts in series.items()}
    for p in all_procs:
        cells = []
        for name in ("optimal", "hector", "ecdf", "ec2", "ness", "quadcore"):
            v = lookup[name].get(p)
            cells.append(f"{v:>9.2f}" if v is not None else f"{'-':>9}")
        lines.append(f"  {p:>6} " + " ".join(cells))
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: print regenerated figures."""
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's figures (2: permutation "
        "distribution, 3: speed-up curves)."
    )
    parser.add_argument("--figure", type=int, choices=(2, 3),
                        help="figure number (default: both)")
    parser.add_argument("--kind", choices=("total", "kernel"),
                        default="total", help="speed-up kind for Figure 3")
    args = parser.parse_args(argv)

    chunks = []
    if args.figure in (None, 2):
        chunks.append(render_figure2())
    if args.figure in (None, 3):
        chunks.append(render_figure3(kind=args.kind))
    print("\n\n".join(chunks))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
