"""Measured-benchmark helpers (real wall-clock, this machine).

Besides regenerating the paper's simulated tables, the repository also
measures the *actual* Python implementation: kernel throughput per
statistic, generator costs, and real ThreadComm scaling.  These helpers
standardise the workloads so ``benchmarks/bench_measured_*.py`` stay small
and comparable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import mt_maxT, pmaxT
from ..data import (
    block_labels,
    paired_labels,
    synthetic_blocked,
    synthetic_expression,
    synthetic_paired,
    two_class_labels,
)
from ..mpi import DEFAULT_BACKEND, run_backend

__all__ = ["Workload", "measured_workload", "run_serial", "run_parallel",
           "kernel_permutations_per_second"]


@dataclass(frozen=True)
class Workload:
    """A ready-to-run (matrix, labels, options) bundle."""

    name: str
    X: np.ndarray
    classlabel: np.ndarray
    test: str
    B: int

    @property
    def m(self) -> int:
        return int(self.X.shape[0])

    @property
    def n(self) -> int:
        return int(self.X.shape[1])


def measured_workload(test: str = "t", *, n_genes: int = 600,
                      n_samples: int = 24, B: int = 400,
                      seed: int = 7) -> Workload:
    """A laptop-scale workload for one statistic family."""
    if test == "pairt":
        npairs = max(n_samples // 2, 4)
        X, _ = synthetic_paired(n_genes, npairs, seed=seed)
        labels = paired_labels(npairs)
    elif test == "blockf":
        nblocks, k = max(n_samples // 3, 4), 3
        X, _ = synthetic_blocked(n_genes, nblocks, k, seed=seed)
        labels = block_labels(nblocks, k)
    elif test == "f":
        per = max(n_samples // 3, 4)
        X, _ = synthetic_expression(n_genes, 3 * per, n_class1=per, seed=seed)
        from ..data import multiclass_labels

        labels = multiclass_labels([per, per, per])
    else:
        half = n_samples // 2
        X, _ = synthetic_expression(n_genes, 2 * half, n_class1=half,
                                    seed=seed)
        labels = two_class_labels(half, half)
    return Workload(name=f"{test}-{n_genes}x{n_samples}-B{B}", X=X,
                    classlabel=labels, test=test, B=B)


def run_serial(work: Workload, **kwargs):
    """Execute the workload serially (``mt_maxT``)."""
    return mt_maxT(work.X, work.classlabel, test=work.test, B=work.B,
                   **kwargs)


def run_parallel(work: Workload, nprocs: int, *,
                 backend: str = DEFAULT_BACKEND, **kwargs):
    """Execute the workload on an SPMD world; returns the master result.

    ``backend`` is any registered execution-backend name (default
    ``"threads"``), so the same workload compares substrates directly.
    """
    def job(comm):
        return pmaxT(work.X, work.classlabel, test=work.test, B=work.B,
                     comm=comm, **kwargs)

    return run_backend(backend, job, nprocs)[0]


def kernel_permutations_per_second(result) -> float:
    """Throughput metric from a profiled result."""
    kernel = result.profile.main_kernel if result.profile else float("nan")
    return result.nperm / kernel if kernel and kernel > 0 else float("nan")
