"""Measured five-section profile tables on the local machine.

The paper's Tables I–V report the pmaxT section profile per process count
on five platforms.  This module produces the same table *measured* on
whatever machine runs it, using the real implementation over the threaded
SPMD world — the sixth row of the paper's benchmark story, "your machine".

CLI::

    python -m repro.bench.measured                 # default workload
    python -m repro.bench.measured --genes 2000 --b 2000 --procs 1 2 4
"""

from __future__ import annotations

import argparse
import platform as platform_mod
from dataclasses import dataclass


from ..core import pmaxT
from ..core.profile import SectionProfile
from ..data import synthetic_expression, two_class_labels
from ..mpi import DEFAULT_BACKEND, available_backends, run_backend

__all__ = ["MeasuredRow", "measure_profile", "measured_profile_table",
           "render_measured_table", "main"]


@dataclass(frozen=True)
class MeasuredRow:
    """One measured table row (same columns as the paper's tables)."""

    procs: int
    profile: SectionProfile
    speedup_total: float
    speedup_kernel: float


def measure_profile(X, classlabel, nprocs: int, *, B: int,
                    repeats: int = 3, backend: str = DEFAULT_BACKEND,
                    **kwargs) -> SectionProfile:
    """Best-of-``repeats`` profile of a pmaxT run at ``nprocs`` ranks.

    Like the paper, the minimum over independent executions is reported to
    suppress interference from other load on the machine.  ``backend``
    picks the execution substrate, so the same table can be measured over
    threads, pickled processes or shared-memory processes.
    """
    best: SectionProfile | None = None
    for _ in range(repeats):
        if nprocs == 1 and backend == DEFAULT_BACKEND:
            result = pmaxT(X, classlabel, B=B, **kwargs)
        else:
            def job(comm):
                return pmaxT(X, classlabel, B=B, comm=comm, **kwargs)

            result = run_backend(backend, job, nprocs)[0]
        if best is None or result.profile.total() < best.total():
            best = result.profile
    return best


def measured_profile_table(proc_counts=(1, 2, 4), *, n_genes: int = 1_000,
                           n_samples: int = 24, B: int = 1_000,
                           repeats: int = 3, seed: int = 5,
                           **kwargs) -> list[MeasuredRow]:
    """Measure the profile table over the given process counts."""
    X, _ = synthetic_expression(n_genes, n_samples,
                                n_class1=n_samples // 2, seed=seed)
    labels = two_class_labels(n_samples - n_samples // 2, n_samples // 2)
    profiles = [measure_profile(X, labels, p, B=B, repeats=repeats,
                                **kwargs)
                for p in proc_counts]
    base = profiles[0]
    rows = []
    for procs, prof in zip(proc_counts, profiles):
        rows.append(MeasuredRow(
            procs=procs,
            profile=prof,
            speedup_total=prof.speedup_vs(base),
            speedup_kernel=prof.kernel_speedup_vs(base),
        ))
    return rows


def render_measured_table(rows: list[MeasuredRow], *, n_genes: int,
                          n_samples: int, B: int,
                          backend: str = DEFAULT_BACKEND) -> str:
    """Render measured rows in the paper's table layout."""
    lines = [
        f"Measured pmaxT profile — this machine "
        f"({platform_mod.processor() or platform_mod.machine()}, "
        f"{platform_mod.system()})",
        f"  workload: B = {B:,} permutations, {n_genes:,} x {n_samples} "
        f"matrix; minimum of repeated runs; {backend!r} SPMD backend",
        f"{'Procs':>5}  {'Pre':>8}  {'Bcast':>8}  {'Create':>8}  "
        f"{'Kernel':>10}  {'P-values':>9}  {'Speedup':>8}  {'Spd(kern)':>9}",
    ]
    for r in rows:
        p = r.profile
        lines.append(
            f"{r.procs:>5}  {p.pre_processing:>8.4f}  "
            f"{p.broadcast_parameters:>8.4f}  {p.create_data:>8.4f}  "
            f"{p.main_kernel:>10.4f}  {p.compute_pvalues:>9.4f}  "
            f"{r.speedup_total:>8.2f}  {r.speedup_kernel:>9.2f}"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Measure the pmaxT five-section profile on this machine."
    )
    parser.add_argument("--genes", type=int, default=1_000)
    parser.add_argument("--samples", type=int, default=24)
    parser.add_argument("--b", type=int, default=1_000)
    parser.add_argument("--procs", type=int, nargs="+", default=[1, 2, 4])
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--backend", default=DEFAULT_BACKEND,
                        choices=available_backends(),
                        help="execution backend to measure "
                        f"(default: {DEFAULT_BACKEND})")
    args = parser.parse_args(argv)

    rows = measured_profile_table(
        tuple(args.procs), n_genes=args.genes, n_samples=args.samples,
        B=args.b, repeats=args.repeats, backend=args.backend)
    print(render_measured_table(rows, n_genes=args.genes,
                                n_samples=args.samples, B=args.b,
                                backend=args.backend))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
