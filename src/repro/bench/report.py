"""Paper-vs-regenerated comparison report (the ``EXPERIMENTS.md`` generator).

For every table and figure of the paper's evaluation this module runs the
regeneration path, compares it against the published numbers transcribed in
:mod:`repro.bench.paper`, and emits a markdown report with per-row residuals
and the qualitative shape checks (who wins, where the drop-offs fall).

CLI::

    python -m repro.bench.report                  # print to stdout
    python -m repro.bench.report -o EXPERIMENTS.md
"""

from __future__ import annotations

import argparse

from ..cluster import get_platform, serial_r_estimate, simulate_pmaxt
from .figures import render_figure2, speedup_series
from .paper import (
    BENCH_B,
    PROFILE_TABLES,
    TABLE6_BIGDATA,
    TABLE6_PROCS,
)
from .tables import TABLE_PLATFORMS, profile_table_rows

__all__ = ["build_report", "main"]

_ROMAN = {1: "I", 2: "II", 3: "III", 4: "IV", 5: "V", 6: "VI"}


def _pct(sim: float, paper: float) -> str:
    if paper == 0:
        return "—"
    return f"{(sim - paper) / paper * 100:+.1f}%"


def _profile_section(number: int) -> list[str]:
    name = TABLE_PLATFORMS[number]
    platform = get_platform(name)
    paper = PROFILE_TABLES[name]
    rows = profile_table_rows(name)
    lines = [
        f"### Table {_ROMAN[number]} — {platform.description}",
        "",
        f"Workload: B = {BENCH_B:,} permutations on the 6 102 × 76 matrix. "
        f"Interconnect: {platform.interconnect}.",
        "",
        "| P | kernel sim (s) | kernel paper (s) | Δ | total speedup sim | "
        "total speedup paper | kernel speedup sim | kernel speedup paper |",
        "|---:|---:|---:|---:|---:|---:|---:|---:|",
    ]
    for row in rows:
        ref = paper.row_for(row.procs)
        lines.append(
            f"| {row.procs} | {row.main_kernel:.3f} | {ref.main_kernel:.3f} "
            f"| {_pct(row.main_kernel, ref.main_kernel)} "
            f"| {row.speedup_total:.2f} | {ref.speedup_total:.2f} "
            f"| {row.speedup_kernel:.2f} | {ref.speedup_kernel:.2f} |"
        )
    lines.append("")
    return lines


def _table6_section() -> list[str]:
    platform = get_platform("hector")
    lines = [
        "### Table VI — large datasets, 256 HECToR cores",
        "",
        "| genes | permutations | total sim (s) | total paper (s) | Δ | "
        "serial-R est. sim (s) | serial-R est. paper (s) |",
        "|---:|---:|---:|---:|---:|---:|---:|",
    ]
    for ref in TABLE6_BIGDATA:
        run = simulate_pmaxt(platform, TABLE6_PROCS, rows=ref.n_genes,
                             permutations=ref.permutations)
        serial = serial_r_estimate(ref.permutations, ref.n_genes)
        lines.append(
            f"| {ref.n_genes:,} | {ref.permutations:,} | {run.total:.2f} "
            f"| {ref.total_seconds:.2f} | {_pct(run.total, ref.total_seconds)} "
            f"| {serial:,.0f} | {ref.serial_estimate_seconds:,.0f} |"
        )
    lines.append("")
    return lines


def _shape_checks() -> list[str]:
    """The qualitative claims of paper Section 4.4, re-verified."""
    checks: list[str] = []

    def check(label: str, ok: bool, detail: str) -> None:
        checks.append(f"- {'PASS' if ok else 'FAIL'} — {label}: {detail}")

    hector = profile_table_rows("hector")
    h512 = next(r for r in hector if r.procs == 512)
    check(
        "HECToR kernel scales near-optimally to 512",
        h512.speedup_kernel > 450,
        f"kernel speedup {h512.speedup_kernel:.0f} at P=512 "
        "(paper: 487.20)",
    )
    check(
        "total and kernel speedups diverge at high P (HECToR)",
        h512.speedup_kernel / h512.speedup_total > 1.3,
        f"kernel/total ratio {h512.speedup_kernel / h512.speedup_total:.2f} "
        "at P=512 (paper: 487.2/313.1 = 1.56)",
    )
    ecdf = {r.procs: r for r in profile_table_rows("ecdf")}
    eff4 = ecdf[4].speedup_total / 4
    eff8 = ecdf[8].speedup_total / 8
    check(
        "ECDF drop-off at 4→8 processes (memory bus)",
        eff8 < eff4 - 0.1,
        f"parallel efficiency {eff4:.2f} at P=4 vs {eff8:.2f} at P=8",
    )
    ec2 = {r.procs: r for r in profile_table_rows("ec2")}
    eff2 = ec2[2].speedup_total / 2
    eff4b = ec2[4].speedup_total / 4
    check(
        "EC2 drop-off at 2→4 processes (instance fills)",
        eff4b < eff2 - 0.1,
        f"parallel efficiency {eff2:.2f} at P=2 vs {eff4b:.2f} at P=4",
    )
    check(
        "EC2 broadcast grows dramatically with instance count",
        ec2[32].broadcast_parameters > 50 * ec2[2].broadcast_parameters,
        f"{ec2[2].broadcast_parameters * 1000:.0f} ms at P=2 vs "
        f"{ec2[32].broadcast_parameters * 1000:.0f} ms at P=32 "
        "(paper: 4 ms → 2 917 ms)",
    )
    ness = {r.procs: r for r in profile_table_rows("ness")}
    check(
        "Ness flattens at the full 16-core box",
        ness[16].speedup_total < 12,
        f"speedup {ness[16].speedup_total:.1f} at P=16 (paper: 10.03)",
    )
    platform = get_platform("hector")
    t36 = simulate_pmaxt(platform, TABLE6_PROCS, rows=36_612,
                         permutations=500_000).total
    t73 = simulate_pmaxt(platform, TABLE6_PROCS, rows=73_224,
                         permutations=500_000).total
    check(
        "doubling the dataset ≈ doubles the elapsed time (Table VI)",
        1.8 < t73 / t36 < 2.2,
        f"ratio {t73 / t36:.2f} (paper: 148.46/73.18 = 2.03)",
    )
    b05 = simulate_pmaxt(platform, TABLE6_PROCS, rows=36_612,
                         permutations=500_000).total
    b20 = simulate_pmaxt(platform, TABLE6_PROCS, rows=36_612,
                         permutations=2_000_000).total
    check(
        "4x the permutations ≈ 4x the elapsed time (Table VI)",
        3.5 < b20 / b05 < 4.5,
        f"ratio {b20 / b05:.2f} (paper: 290.22/73.18 = 3.97)",
    )
    series = speedup_series("total")
    ordering_at_32 = sorted(
        ((dict(series[n]).get(32, 0.0), n) for n in
         ("hector", "ecdf", "ec2")), reverse=True)
    check(
        "platform ordering at P=32: HECToR > ECDF > EC2",
        [n for _, n in ordering_at_32] == ["hector", "ecdf", "ec2"],
        " > ".join(f"{n}({s:.1f})" for s, n in ordering_at_32),
    )
    return checks


def build_report() -> str:
    """Assemble the full markdown comparison report."""
    lines = [
        "# EXPERIMENTS — paper vs regenerated",
        "",
        "Reproduction of *Optimization of a parallel permutation testing "
        "function for the SPRINT R package* (Petrou et al., HPDC/ECMLS "
        "2010; CCPE 2011).",
        "",
        "The paper's Tables I–VI were measured on five physical platforms; "
        "this environment has one CPU core and no MPI, so the tables are "
        "regenerated by a calibrated platform simulator (see DESIGN.md §2) "
        "that executes the real pmaxT partition/orchestration logic and "
        "prices it with per-platform models fitted to the paper's own "
        "single-process and contention anchors.  Exact equality is neither "
        "expected nor meaningful; the *shape* checks at the end are the "
        "reproduction criteria.  Correctness of the algorithm itself "
        "(serial ≡ parallel, exactness of complete-permutation p-values) "
        "is established by the test suite, not by these tables.",
        "",
        "Regenerate with `python -m repro.bench.report`, or per-table via "
        "`python -m repro.bench.tables --table N --paper`.",
        "",
        "## Profile tables",
        "",
    ]
    for number in range(1, 6):
        lines += _profile_section(number)
    lines += _table6_section()
    lines += [
        "### Figure 1 — SPRINT architecture",
        "",
        "Not an experiment: the architecture is *implemented* by "
        "`repro.sprint` (master/worker command loop, function registry) and "
        "exercised by `examples/sprint_session.py` and the framework tests.",
        "",
        "### Figure 2 — permutation distribution",
        "",
        "```",
        render_figure2(),
        "```",
        "",
        "### Figure 3 — speed-up curves",
        "",
        "Regenerated from the simulated tables via "
        "`python -m repro.bench.figures --figure 3`; the series equal the "
        "speedup columns reported above.",
        "",
        "## Qualitative shape checks (paper Section 4.4)",
        "",
    ]
    lines += _shape_checks()
    lines += [
        "",
        "## Appendix — measured on this machine",
        "",
        "The tables above are simulated; this one is the *real* Python "
        "implementation profiled on the machine that generated this "
        "report (threaded SPMD world, small workload, minimum of 3 runs). "
        "On a single-core host the parallel rows measure substrate "
        "overhead rather than speed-up — the correctness guarantee "
        "(parallel ≡ serial) holds regardless and is what the test suite "
        "enforces.",
        "",
        "```",
    ]
    from .measured import measured_profile_table, render_measured_table

    measured_rows = measured_profile_table((1, 2, 4), n_genes=600,
                                           n_samples=24, B=600)
    lines.append(render_measured_table(measured_rows, n_genes=600,
                                       n_samples=24, B=600))
    lines += [
        "```",
        "",
        "## Known residuals",
        "",
        "- ECDF P=128: the paper's kernel time (5.813 s) sits ~13% above "
        "the occupancy model (the paper's own kernel speedup drops from "
        "47.0 to 80.4/128 there); the fitted per-occupancy factor averages "
        "over it, so the simulator is optimistic at that single point.",
        "- Table VI totals run ~7–11% below the paper: the big exon "
        "matrices exceed HECToR's L2 per-core cache so the real per-row "
        "kernel cost grows slightly with m, which the linear-in-rows model "
        "ignores.  The paper's headline ratios (2× data → 2× time, linear "
        "in B, ~280× vs serial R) are preserved.",
        "- EC2 compute-p-values is noisy in the paper (2.57/4.98/3.83 s "
        "for P=8/16/32); the fitted log-domain model smooths through it.",
        "",
    ]
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Generate the paper-vs-regenerated comparison report."
    )
    parser.add_argument("-o", "--output", help="write to this file")
    args = parser.parse_args(argv)
    report = build_report()
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(report)
        print(f"wrote {args.output}")
    else:
        print(report)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
