"""Regenerate the paper's Tables I–VI.

Each profile table (I–V) is produced by running the calibrated simulator
over the paper's process counts for that platform and formatting the five
sections plus total/kernel speedups exactly like the paper's layout.
Table VI runs the two large exon-array workloads on 256 simulated HECToR
cores and prints the serial-R comparison column.

Usable as a library (:func:`profile_table_rows`, :func:`render_table`) and
as a CLI::

    python -m repro.bench.tables              # all tables
    python -m repro.bench.tables --table 3    # Table III (EC2) only
    python -m repro.bench.tables --paper      # include the paper's values
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

from ..cluster import (
    SimulatedRun,
    get_platform,
    serial_r_estimate,
    simulate_pmaxt,
    simulate_scaling,
)
from .paper import (
    BENCH_B,
    PROFILE_TABLES,
    TABLE6_BIGDATA,
    TABLE6_PROCS,
    PaperTable,
)

__all__ = [
    "TableRow",
    "profile_table_rows",
    "render_table",
    "render_table6",
    "TABLE_PLATFORMS",
    "main",
]

#: Table number -> platform name, as in the paper.
TABLE_PLATFORMS: dict[int, str] = {
    1: "hector",
    2: "ecdf",
    3: "ec2",
    4: "ness",
    5: "quadcore",
}


@dataclass(frozen=True)
class TableRow:
    """One formatted row of a regenerated profile table."""

    procs: int
    pre_processing: float
    broadcast_parameters: float
    create_data: float
    main_kernel: float
    compute_pvalues: float
    speedup_total: float
    speedup_kernel: float

    @classmethod
    def from_run(cls, run: SimulatedRun, baseline: SimulatedRun) -> "TableRow":
        p = run.profile
        return cls(
            procs=run.nprocs,
            pre_processing=p.pre_processing,
            broadcast_parameters=p.broadcast_parameters,
            create_data=p.create_data,
            main_kernel=p.main_kernel,
            compute_pvalues=p.compute_pvalues,
            speedup_total=run.speedup_vs(baseline),
            speedup_kernel=run.kernel_speedup_vs(baseline),
        )


def profile_table_rows(platform_name: str,
                       proc_counts: tuple[int, ...] | None = None,
                       *, permutations: int = BENCH_B) -> list[TableRow]:
    """Simulate a platform's profile table (the paper's process counts)."""
    platform = get_platform(platform_name)
    runs = simulate_scaling(platform, proc_counts, permutations=permutations)
    baseline = runs[0]
    return [TableRow.from_run(run, baseline) for run in runs]


_HEADER = (
    f"{'Procs':>5}  {'Pre':>8}  {'Bcast':>8}  {'Create':>8}  "
    f"{'Kernel':>10}  {'P-values':>9}  {'Speedup':>8}  {'Spd(kern)':>9}"
)


def _format_row(r: TableRow) -> str:
    return (
        f"{r.procs:>5}  {r.pre_processing:>8.3f}  "
        f"{r.broadcast_parameters:>8.3f}  {r.create_data:>8.3f}  "
        f"{r.main_kernel:>10.3f}  {r.compute_pvalues:>9.3f}  "
        f"{r.speedup_total:>8.2f}  {r.speedup_kernel:>9.2f}"
    )


def render_table(table_number: int, *, include_paper: bool = False) -> str:
    """Render one regenerated profile table (1–5) as text."""
    platform_name = TABLE_PLATFORMS[table_number]
    paper: PaperTable = PROFILE_TABLES[platform_name]
    platform = get_platform(platform_name)
    rows = profile_table_rows(platform_name)
    lines = [
        f"Table {'I' * table_number if table_number <= 3 else ['IV', 'V'][table_number - 4]}"
        f" — pmaxT profile, {platform.description}",
        f"  workload: B = {BENCH_B:,} permutations, 6 102 x 76 matrix "
        f"(simulated; model calibrated from the paper)",
        _HEADER,
    ]
    for row in rows:
        lines.append(_format_row(row))
        if include_paper:
            ref = paper.row_for(row.procs)
            lines.append(
                f"{'paper':>5}  {ref.pre_processing:>8.3f}  "
                f"{ref.broadcast_parameters:>8.3f}  {ref.create_data:>8.3f}  "
                f"{ref.main_kernel:>10.3f}  {ref.compute_pvalues:>9.3f}  "
                f"{ref.speedup_total:>8.2f}  {ref.speedup_kernel:>9.2f}"
            )
    return "\n".join(lines)


def render_table6(*, include_paper: bool = False) -> str:
    """Render the regenerated Table VI (big datasets on 256 HECToR cores)."""
    platform = get_platform("hector")
    lines = [
        "Table VI — pmaxT vs serial R, 256 HECToR cores (simulated)",
        f"{'Genes':>7} {'Samples':>8} {'Size MB':>8} {'Permutations':>13} "
        f"{'Total (s)':>10} {'Serial R est. (s)':>18}",
    ]
    for ref in TABLE6_BIGDATA:
        run = simulate_pmaxt(platform, TABLE6_PROCS, rows=ref.n_genes,
                             cols=ref.n_samples,
                             permutations=ref.permutations)
        serial = serial_r_estimate(ref.permutations, ref.n_genes)
        lines.append(
            f"{ref.n_genes:>7} {ref.n_samples:>8} {ref.size_mb:>8.2f} "
            f"{ref.permutations:>13,} {run.total:>10.2f} {serial:>18,.0f}"
        )
        if include_paper:
            lines.append(
                f"{'paper':>7} {'':>8} {'':>8} {'':>13} "
                f"{ref.total_seconds:>10.2f} "
                f"{ref.serial_estimate_seconds:>18,.0f}"
            )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: print regenerated tables."""
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's benchmark tables from the "
        "calibrated platform simulator."
    )
    parser.add_argument("--table", type=int, choices=range(1, 7),
                        help="table number (default: all six)")
    parser.add_argument("--paper", action="store_true",
                        help="interleave the paper's published values")
    args = parser.parse_args(argv)

    numbers = [args.table] if args.table else list(range(1, 7))
    chunks = []
    for n in numbers:
        if n == 6:
            chunks.append(render_table6(include_paper=args.paper))
        else:
            chunks.append(render_table(n, include_paper=args.paper))
    print("\n\n".join(chunks))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
