"""Benchmark harness: paper constants, table/figure regeneration, report.

* :mod:`repro.bench.paper` — the paper's published numbers, transcribed;
* :mod:`repro.bench.tables` — regenerate Tables I–VI (CLI:
  ``python -m repro.bench.tables``);
* :mod:`repro.bench.figures` — regenerate Figures 2 and 3 (CLI:
  ``python -m repro.bench.figures``);
* :mod:`repro.bench.report` — paper-vs-regenerated markdown report
  (CLI: ``python -m repro.bench.report``);
* :mod:`repro.bench.runner` — measured-workload helpers for the
  pytest-benchmark suite.

Submodules are loaded lazily: :mod:`repro.cluster` calibrates itself from
:mod:`repro.bench.paper` while :mod:`repro.bench.tables` drives
:mod:`repro.cluster`, so an eager package ``__init__`` would close an import
cycle.
"""

from __future__ import annotations

import importlib

_EXPORTS = {
    # paper constants
    "BENCH_B": "paper",
    "BENCH_GENES": "paper",
    "BENCH_SAMPLES": "paper",
    "PROFILE_TABLES": "paper",
    "TABLE6_BIGDATA": "paper",
    "PaperTable": "paper",
    "ProfileRow": "paper",
    # tables
    "TableRow": "tables",
    "TABLE_PLATFORMS": "tables",
    "profile_table_rows": "tables",
    "render_table": "tables",
    "render_table6": "tables",
    # figures
    "render_figure2": "figures",
    "render_figure3": "figures",
    "speedup_series": "figures",
    # report
    "build_report": "report",
    # measured profile tables
    "MeasuredRow": "measured",
    "measure_profile": "measured",
    "measured_profile_table": "measured",
    "render_measured_table": "measured",
    # measured runners
    "Workload": "runner",
    "measured_workload": "runner",
    "run_serial": "runner",
    "run_parallel": "runner",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module 'repro.bench' has no attribute {name!r}") \
            from None
    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
