"""The paper's published measurements, transcribed verbatim.

These constants serve two purposes:

1. **Calibration anchors** — :mod:`repro.cluster.calibrate` fits each
   platform's parametric performance model to a *subset* of these numbers
   (single-process kernel cost, contention by node occupancy, collective
   coefficients), and
2. **Ground truth for the report** — :mod:`repro.bench.report` compares the
   simulator's regenerated tables against every published row and records
   the residuals in ``EXPERIMENTS.md``.

Benchmark workload for Tables I–V and Figure 3 (paper Section 4.3):
B = 150 000 permutations on a 6 102 x 76 matrix; values are minima over
five independent executions.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "ProfileRow",
    "PaperTable",
    "TABLE1_HECTOR",
    "TABLE2_ECDF",
    "TABLE3_EC2",
    "TABLE4_NESS",
    "TABLE5_QUADCORE",
    "PROFILE_TABLES",
    "BigRunRow",
    "TABLE6_BIGDATA",
    "BENCH_B",
    "BENCH_GENES",
    "BENCH_SAMPLES",
]

#: Workload of Tables I–V / Figure 3.
BENCH_B: int = 150_000
BENCH_GENES: int = 6_102
BENCH_SAMPLES: int = 76


@dataclass(frozen=True)
class ProfileRow:
    """One row of a profile table (Tables I–V)."""

    procs: int
    pre_processing: float
    broadcast_parameters: float
    create_data: float
    main_kernel: float
    compute_pvalues: float
    speedup_total: float
    speedup_kernel: float

    @property
    def total(self) -> float:
        return (self.pre_processing + self.broadcast_parameters
                + self.create_data + self.main_kernel + self.compute_pvalues)


@dataclass(frozen=True)
class PaperTable:
    """A full profile table with its platform identity."""

    table_id: str
    platform: str
    rows: tuple[ProfileRow, ...]

    def row_for(self, procs: int) -> ProfileRow:
        for row in self.rows:
            if row.procs == procs:
                return row
        raise KeyError(f"{self.table_id} has no row for {procs} processes")

    @property
    def proc_counts(self) -> tuple[int, ...]:
        return tuple(row.procs for row in self.rows)


TABLE1_HECTOR = PaperTable(
    table_id="Table I",
    platform="hector",
    rows=(
        ProfileRow(1,   0.260, 0.001, 0.010, 795.600, 0.002, 1.00, 1.00),
        ProfileRow(2,   0.261, 0.004, 0.012, 406.204, 0.884, 1.95, 1.95),
        ProfileRow(4,   0.259, 0.009, 0.013, 207.776, 0.005, 3.82, 3.82),
        ProfileRow(8,   0.260, 0.013, 0.013, 104.169, 0.489, 7.58, 7.63),
        ProfileRow(16,  0.259, 0.015, 0.013, 51.931, 0.713, 15.03, 15.32),
        ProfileRow(32,  0.259, 0.017, 0.013, 25.993, 0.784, 29.40, 30.60),
        ProfileRow(64,  0.259, 0.020, 0.013, 13.028, 0.611, 57.11, 61.06),
        ProfileRow(128, 0.259, 0.023, 0.013, 6.516, 0.662, 106.48, 122.09),
        ProfileRow(256, 0.260, 0.024, 0.013, 3.257, 0.611, 190.99, 244.27),
        ProfileRow(512, 0.260, 0.028, 0.013, 1.633, 0.606, 313.09, 487.20),
    ),
)

TABLE2_ECDF = PaperTable(
    table_id="Table II",
    platform="ecdf",
    rows=(
        ProfileRow(1,   0.157, 0.000, 0.003, 467.273, 0.000, 1.00, 1.00),
        ProfileRow(2,   0.163, 0.002, 0.003, 234.848, 0.000, 1.99, 1.99),
        ProfileRow(4,   0.162, 0.003, 0.004, 123.174, 0.000, 3.79, 3.79),
        ProfileRow(8,   0.159, 0.004, 0.005, 79.576, 1.217, 5.77, 5.87),
        ProfileRow(16,  0.158, 0.032, 0.005, 39.467, 1.224, 11.43, 11.84),
        ProfileRow(32,  0.164, 0.072, 0.005, 19.862, 1.235, 21.91, 23.53),
        ProfileRow(64,  0.157, 0.072, 0.005, 9.935, 1.297, 40.77, 47.03),
        ProfileRow(128, 0.162, 0.086, 0.007, 5.813, 1.304, 63.40, 80.38),
    ),
)

TABLE3_EC2 = PaperTable(
    table_id="Table III",
    platform="ec2",
    rows=(
        ProfileRow(1,  0.272, 0.000, 0.006, 539.074, 0.000, 1.00, 1.00),
        ProfileRow(2,  0.271, 0.004, 0.009, 291.514, 0.005, 1.84, 1.84),
        ProfileRow(4,  0.273, 0.011, 0.014, 187.342, 0.043, 2.87, 2.87),
        ProfileRow(8,  0.278, 0.880, 0.014, 90.806, 2.574, 5.70, 5.93),
        ProfileRow(16, 0.268, 1.735, 0.022, 43.756, 4.983, 10.62, 12.32),
        ProfileRow(32, 0.270, 2.917, 0.019, 22.308, 3.834, 18.37, 24.16),
    ),
)

TABLE4_NESS = PaperTable(
    table_id="Table IV",
    platform="ness",
    rows=(
        ProfileRow(1,  0.393, 0.000, 0.010, 852.223, 0.000, 1.00, 1.00),
        ProfileRow(2,  0.467, 0.007, 0.012, 443.050, 0.001, 1.92, 1.92),
        ProfileRow(4,  0.398, 0.029, 0.012, 216.595, 0.001, 3.93, 3.93),
        ProfileRow(8,  0.394, 0.032, 0.014, 117.317, 0.001, 7.24, 7.26),
        ProfileRow(16, 0.436, 0.109, 0.019, 84.442, 0.001, 10.03, 10.09),
    ),
)

TABLE5_QUADCORE = PaperTable(
    table_id="Table V",
    platform="quadcore",
    rows=(
        ProfileRow(1, 0.140, 0.000, 0.007, 566.638, 0.001, 1.00, 1.00),
        ProfileRow(2, 0.136, 0.003, 0.008, 282.623, 0.085, 2.00, 2.00),
        ProfileRow(4, 0.135, 0.010, 0.013, 167.439, 0.705, 3.37, 3.38),
    ),
)

#: All five profile tables keyed by platform name.
PROFILE_TABLES: dict[str, PaperTable] = {
    t.platform: t
    for t in (TABLE1_HECTOR, TABLE2_ECDF, TABLE3_EC2, TABLE4_NESS,
              TABLE5_QUADCORE)
}


@dataclass(frozen=True)
class BigRunRow:
    """One row of Table VI (256 HECToR cores; serial times are the paper's
    linear extrapolations of the serial R implementation)."""

    n_genes: int
    n_samples: int
    size_mb: float
    permutations: int
    total_seconds: float
    serial_estimate_seconds: float


TABLE6_BIGDATA: tuple[BigRunRow, ...] = (
    BigRunRow(36_612, 76, 21.22, 500_000, 73.18, 20_750.0),
    BigRunRow(36_612, 76, 21.22, 1_000_000, 146.64, 41_500.0),
    BigRunRow(36_612, 76, 21.22, 2_000_000, 290.22, 83_000.0),
    BigRunRow(73_224, 76, 42.45, 500_000, 148.46, 35_000.0),
    BigRunRow(73_224, 76, 42.45, 1_000_000, 294.61, 70_000.0),
    BigRunRow(73_224, 76, 42.45, 2_000_000, 591.48, 140_000.0),
)

#: Table VI runs all used this many HECToR cores.
TABLE6_PROCS: int = 256
