"""repro — reproduction of the SPRINT ``pmaxT`` parallel permutation test.

Petrou, Sloan, Mewissen, Forster, Piotrowski, Dobrzelecki, Ghazal, Trew,
Hill: *Optimization of a parallel permutation testing function for the
SPRINT R package* (HPDC/ECMLS 2010; CCPE 23(17), 2011).

Public API highlights
---------------------

* :func:`repro.mt_maxT` — serial Westfall–Young maxT (multtest's
  ``mt.maxT``),
* :func:`repro.pmaxT` — the parallel version, identical interface plus a
  communicator,
* :func:`repro.mpi.run_spmd` — launch an SPMD world of ranks in-process,
* :mod:`repro.sprint` — the SPRINT master/worker framework layer,
* :mod:`repro.cluster` — calibrated performance models of the paper's five
  benchmark platforms (HECToR, ECDF, EC2, Ness, quad-core desktop),
* :mod:`repro.data` — synthetic microarray dataset generators,
* :mod:`repro.bench` — the harness regenerating every table and figure.

Quickstart::

    import numpy as np
    from repro import mt_maxT, pmaxT
    from repro.data import synthetic_expression, two_class_labels

    X, truth = synthetic_expression(n_genes=500, n_samples=20, seed=1)
    labels = two_class_labels(10, 10)
    serial = mt_maxT(X, labels, test="t", B=1000)
    print(serial.table(limit=10))
"""

from .core import (
    MaxTOptions,
    MaxTResult,
    SectionProfile,
    mt_maxT,
    partition_permutations,
    pmaxT,
)
from .errors import (
    ClusterModelError,
    CommAbort,
    CommunicatorError,
    CompletePermutationOverflow,
    DataError,
    OptionError,
    PermutationError,
    ReproError,
    SprintError,
    WorkerDeadError,
)
from .stats import MT_NA_NUM, available_tests

__version__ = "1.0.0"

__all__ = [
    "mt_maxT",
    "pmaxT",
    "MaxTResult",
    "MaxTOptions",
    "SectionProfile",
    "partition_permutations",
    "available_tests",
    "MT_NA_NUM",
    "ReproError",
    "OptionError",
    "DataError",
    "PermutationError",
    "CompletePermutationOverflow",
    "CommunicatorError",
    "CommAbort",
    "WorkerDeadError",
    "SprintError",
    "ClusterModelError",
    "__version__",
]
