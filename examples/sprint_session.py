#!/usr/bin/env python
"""The SPRINT framework experience (paper Figure 1) + fault tolerance.

Demonstrates the architecture the paper builds on: a master evaluating the
user's script while workers wait in the framework's command loop, parallel
functions dispatched by name from the SPRINT library, and — from the
paper's future-work list — checkpoint/restart of an interrupted run.

Run: ``python examples/sprint_session.py``
"""

import tempfile

import numpy as np

from repro import pmaxT
from repro.core.checkpoint import CheckpointStore
from repro.data import synthetic_expression, two_class_labels
from repro.sprint import SprintSession, default_registry, run_sprint


def main() -> None:
    X, _ = synthetic_expression(300, 24, n_class1=12, de_fraction=0.05,
                                effect_size=2.5, seed=17)
    labels = two_class_labels(12, 12)

    # --- the user-facing session: 'mpiexec -n 4 R -f script.R' in spirit --
    registry = default_registry()
    registry.register("gene_means", lambda comm, M: M.mean(axis=1)
                      if comm.is_master else None)

    with SprintSession(nprocs=4, registry=registry) as sprint:
        print(f"SPRINT session up: 1 master + {sprint.size - 1} workers")

        # the paper's function, dispatched through the framework
        res = sprint.pmaxT(X, labels, test="t", B=1_000)
        print(f"pmaxT via the framework: {res.nperm} permutations on "
              f"{res.nranks} ranks, top gene adjp = "
              f"{np.nanmin(res.adjp):.4f}")

        # the generic apply-style helper other parallel-R packages offer
        squares = sprint.call("papply", lambda x: x * x, list(range(8)))
        print(f"papply over the workers: {squares}")

        # user-registered parallel functions join the same library
        means = sprint.call("gene_means", X)
        print(f"custom registered function: {len(means)} gene means")

    print("session closed; workers released from the waiting loop\n")

    # --- the same program over real OS ranks ------------------------------
    # run_sprint executes the whole Figure-1 flow inside any registered
    # execution backend; "shm" gives true process isolation with the data
    # broadcast through zero-copy shared-memory segments.
    def script(master):
        return master.call("pmaxT", X, labels, test="t", B=1_000)

    res = run_sprint(script, backend="shm", ranks=4)
    print(f"run_sprint over the 'shm' backend: {res.nperm} permutations on "
          f"{res.nranks} OS ranks, top gene adjp = {np.nanmin(res.adjp):.4f}\n")

    # --- fault tolerance (paper future-work item 1) -----------------------
    with tempfile.TemporaryDirectory() as ckpt:
        from repro.core.checkpoint import problem_fingerprint
        from repro.core.options import validate_options

        full = pmaxT(X, labels, B=2_000, seed=23)

        # simulate a crash partway through a checkpointed run
        from repro.core.checkpoint import run_kernel_resumable
        from repro.core.kernel import compute_observed
        from repro.core.options import build_generator, build_statistic

        options = validate_options(labels, B=2_000, seed=23)
        stat = build_statistic(options, X, labels)
        gen = build_generator(options, labels)
        observed = compute_observed(stat, options.side)
        fp = problem_fingerprint(X, labels, options, 0, options.nperm)
        store = CheckpointStore(ckpt)
        try:
            run_kernel_resumable(stat, gen, observed, options.side, 0,
                                 options.nperm, store=store, fingerprint=fp,
                                 interval=250, fail_after=900)
        except RuntimeError as exc:
            print(f"simulated failure: {exc}")
        state = store.load(fp)
        print(f"checkpoint holds {state.position}/{options.nperm} "
              "permutations; resuming...")
        counts = run_kernel_resumable(stat, gen, observed, options.side, 0,
                                      options.nperm, store=store,
                                      fingerprint=fp, interval=250)
        print(f"resumed run finished: {counts.nperm} permutations total")

        # a checkpointed pmaxT produces exactly the uninterrupted answer
        res = pmaxT(X, labels, B=2_000, seed=23, checkpoint_dir=ckpt)
        assert np.array_equal(res.rawp, full.rawp)
        print("checkpointed pmaxT result identical to the uninterrupted "
              "run — long analyses survive failures without losing work")


if __name__ == "__main__":
    main()
