#!/usr/bin/env python
"""A realistic microarray differential-expression study.

Walks through the analysis the paper's users run: a pre-processed
two-class expression matrix (here synthetic, with missing values, at a
scaled-down version of the paper's 6 102 x 76 dataset), tested with three
of the pmaxT statistics, comparing unadjusted p-values against
Westfall-Young maxT adjusted ones to show why multiple-testing adjustment
is the whole point.

Run: ``python examples/microarray_study.py``
"""

import numpy as np

from repro import pmaxT
from repro.data import inject_missing, synthetic_expression, two_class_labels
from repro.mpi import run_spmd


def run_test(X, labels, test, B=1_500, nprocs=4):
    def job(comm):
        return pmaxT(X, labels, test=test, B=B, comm=comm)

    return run_spmd(job, nprocs)[0]


def main() -> None:
    # --- a scaled-down version of the paper's benchmark dataset ----------
    n_genes, n0, n1 = 1_526, 38, 38  # paper: 6 102 x (38+38)
    X, truth = synthetic_expression(
        n_genes=n_genes, n_samples=n0 + n1, n_class1=n1,
        de_fraction=0.03, effect_size=2.2, seed=7,
    )
    # microarrays have missing spots; pmaxT excludes them per gene
    X = inject_missing(X, rate=0.01, seed=8)
    labels = two_class_labels(n0, n1)
    true_de = set(truth.de_genes.tolist())
    print(f"dataset: {n_genes} genes x {n0 + n1} samples, "
          f"{np.isnan(X).mean():.1%} missing cells, "
          f"{len(true_de)} genes truly differential\n")

    # --- three statistics over the same data ------------------------------
    for test in ("t", "t.equalvar", "wilcoxon"):
        res = run_test(X, labels, test)
        raw_hits = np.nansum(res.rawp < 0.05)
        adj_hits = res.significant(0.05)
        true_hits = len(set(adj_hits.tolist()) & true_de)
        false_hits = len(adj_hits) - true_hits
        expected_false_raw = int(0.05 * n_genes)
        print(f"test={test!r}")
        print(f"  raw p < 0.05      : {raw_hits:4d} genes "
              f"(~{expected_false_raw} expected by chance alone!)")
        print(f"  maxT adjp < 0.05  : {len(adj_hits):4d} genes "
              f"({true_hits} true, {false_hits} false)")

    # --- report the top genes under the default statistic ----------------
    res = run_test(X, labels, "t")
    print("\ntop 10 genes (Welch t, maxT adjusted):")
    print(res.table(limit=10))

    print("\ntakeaway: thousands of raw-p 'discoveries' collapse to a "
          "reliable FWER-controlled list after Westfall-Young adjustment — "
          "and the permutation count that adjustment needs is exactly what "
          "pmaxT parallelises.")


if __name__ == "__main__":
    main()
