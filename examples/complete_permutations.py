#!/usr/bin/env python
"""Exact inference with complete permutation enumeration (B = 0).

Small designs allow enumerating the *entire* permutation group, giving
exact p-values with no Monte-Carlo error.  This example exercises the
``B = 0`` path of the interface for three designs:

* a paired study (2^npairs sign flips),
* a two-class study (C(n, n1) relabellings),
* a randomized block design ((k!)^blocks within-block shuffles),

shows that sampled p-values converge to the exact ones as B grows, and
demonstrates the overflow guard on designs too large to enumerate.

Run: ``python examples/complete_permutations.py``
"""

import numpy as np

from repro import mt_maxT
from repro.data import (
    block_labels,
    paired_labels,
    synthetic_blocked,
    synthetic_paired,
    synthetic_expression,
    two_class_labels,
)
from repro.errors import CompletePermutationOverflow
from repro.permute import complete_count


def main() -> None:
    # --- paired design: 2^10 = 1024 sign flips ---------------------------
    X, truth = synthetic_paired(80, 10, de_fraction=0.1, effect_size=1.8,
                                seed=3)
    labels = paired_labels(10)
    exact = mt_maxT(X, labels, test="pairt", B=0)
    print(f"paired design, {exact.nperm} complete permutations "
          f"(complete={exact.complete}): exact p-values")
    print(exact.table(limit=5))

    # sampled runs converge to the exact answer as B grows
    print("\nMonte-Carlo convergence to the exact raw p-values:")
    for B in (64, 256, 512):
        sampled = mt_maxT(X, labels, test="pairt", B=B, seed=11)
        err = np.nanmax(np.abs(sampled.rawp - exact.rawp))
        print(f"  B={B:5d}: max |sampled - exact| = {err:.4f}")

    # --- two-class design: C(10, 5) = 252 relabellings --------------------
    X2, _ = synthetic_expression(50, 10, n_class1=5, seed=4)
    labels2 = two_class_labels(5, 5)
    exact2 = mt_maxT(X2, labels2, test="t", B=0)
    print(f"\ntwo-class design: {exact2.nperm} complete relabellings; "
          f"smallest possible p-value = 1/{exact2.nperm} "
          f"= {1 / exact2.nperm:.4f}")

    # --- block design: (3!)^4 = 1296 within-block shuffles ----------------
    X3, _ = synthetic_blocked(40, 4, 3, seed=5)
    labels3 = block_labels(4, 3)
    exact3 = mt_maxT(X3, labels3, test="blockf", B=0)
    print(f"block design: {exact3.nperm} complete within-block shuffles")

    # --- the overflow guard ------------------------------------------------
    big_labels = two_class_labels(38, 38)  # the paper's 76-sample design
    total = complete_count("t", big_labels)
    print(f"\nthe paper's 76-sample design has C(76,38) = {total:.3e} "
          "complete permutations;")
    try:
        mt_maxT(np.zeros((2, 76)), big_labels, B=0)
    except CompletePermutationOverflow as exc:
        print(f"B=0 is refused as the interface promises: {exc}")


if __name__ == "__main__":
    main()
