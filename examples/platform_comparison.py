#!/usr/bin/env python
"""Reproduce the paper's cross-platform evaluation (Tables I-V, Figure 3).

Runs the calibrated platform simulator over the five benchmark systems —
HECToR, the ECDF cluster, Amazon EC2, the Ness SMP and a quad-core desktop
— with the paper's workload (B = 150 000 permutations, 6 102 x 76 matrix),
prints each profile table next to the paper's published numbers, and
renders the Figure 3 speed-up plot.

Run: ``python examples/platform_comparison.py``
"""

from repro.bench.figures import render_figure3
from repro.bench.paper import PROFILE_TABLES, TABLE6_BIGDATA, TABLE6_PROCS
from repro.cluster import (
    PLATFORM_NAMES,
    get_platform,
    render_timeline,
    serial_r_estimate,
    simulate_pmaxt,
    simulate_scaling,
)


def main() -> None:
    print("pmaxT cross-platform evaluation (simulated; models calibrated "
          "from the paper's own measurements)\n")

    for name in PLATFORM_NAMES:
        platform = get_platform(name)
        runs = simulate_scaling(platform)
        base = runs[0]
        paper = PROFILE_TABLES[name]
        print(f"== {platform.description}")
        print(f"   interconnect: {platform.interconnect}")
        print(f"   {'P':>4} {'kernel (s)':>12} {'total (s)':>12} "
              f"{'speedup':>9} {'paper':>9}")
        for run in runs:
            ref = paper.row_for(run.nprocs)
            print(f"   {run.nprocs:>4} {run.kernel:>12.3f} "
                  f"{run.total:>12.3f} {run.speedup_vs(base):>9.2f} "
                  f"{ref.speedup_total:>9.2f}")
        print()

    # --- Table VI: the 'hours become minutes' result ----------------------
    print("== large datasets on 256 HECToR cores (paper Table VI)")
    platform = get_platform("hector")
    print(f"   {'genes':>7} {'permutations':>13} {'pmaxT (s)':>10} "
          f"{'serial R (s)':>13} {'factor':>7}")
    for ref in TABLE6_BIGDATA:
        run = simulate_pmaxt(platform, TABLE6_PROCS, rows=ref.n_genes,
                             permutations=ref.permutations)
        serial = serial_r_estimate(ref.permutations, ref.n_genes)
        print(f"   {ref.n_genes:>7} {ref.permutations:>13,} "
              f"{run.total:>10.2f} {serial:>13,.0f} "
              f"{serial / run.total:>6.0f}x")
    print()

    print(render_figure3())

    # --- a per-rank timeline showing EC2's straggler problem ---------------
    print()
    run = simulate_pmaxt(get_platform("ec2"), 8, jitter=0.25, seed=3)
    print(render_timeline(run))
    print("  (the uneven 'g' tails are the master waiting for stragglers — "
        "the cost Section 4.4 attributes to the virtual network)")


if __name__ == "__main__":
    main()
