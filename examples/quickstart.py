#!/usr/bin/env python
"""Quickstart: serial and parallel maxT permutation testing.

Generates a small synthetic two-class expression matrix with a handful of
planted differentially expressed genes, runs the serial ``mt_maxT`` (the
multtest reference), then the parallel ``pmaxT`` on an in-process 4-rank
world, and verifies the paper's headline property — the results are
identical.

Run: ``python examples/quickstart.py``
"""

import numpy as np

from repro import mt_maxT, pmaxT
from repro.data import synthetic_expression, two_class_labels
from repro.mpi import available_backends


def main() -> None:
    # --- data: 500 genes x 20 samples, 10 control vs 10 treated ----------
    X, truth = synthetic_expression(
        n_genes=500, n_samples=20, n_class1=10,
        de_fraction=0.04, effect_size=3.0, seed=42,
    )
    labels = two_class_labels(10, 10)
    print(f"dataset: {X.shape[0]} genes x {X.shape[1]} samples, "
          f"{truth.n_de} genes truly differential")

    # --- serial run (identical interface to R's mt.maxT) -----------------
    serial = mt_maxT(X, labels, test="t", side="abs", B=2_000)
    print(f"\nserial mt_maxT: B={serial.nperm} permutations")
    print(serial.table(limit=8))

    # --- parallel run: same call + an execution backend -------------------
    # Any name from the backend registry works here: "threads" (in-process),
    # "processes" (forked ranks, pickled collectives) or "shm" (forked
    # ranks, zero-copy shared-memory collectives).
    print(f"\nregistered execution backends: {', '.join(available_backends())}")
    parallel = pmaxT(X, labels, test="t", side="abs", B=2_000,
                     backend="threads", ranks=4)
    assert np.array_equal(serial.rawp, parallel.rawp)
    assert np.array_equal(serial.adjp, parallel.adjp)
    print(f"pmaxT on {parallel.nranks} ranks: results identical to serial "
          "(the paper's reproducibility guarantee)")

    shm_run = pmaxT(X, labels, test="t", side="abs", B=2_000,
                    backend="shm", ranks=4)
    assert np.array_equal(serial.adjp, shm_run.adjp)
    print("pmaxT on the 'shm' backend (OS processes, zero-copy broadcast): "
          "identical again")

    p = parallel.profile
    print("\nfive-section profile (the columns of the paper's Tables I-V):")
    for name, seconds in zip(
            ("pre-processing", "broadcast parameters", "create data",
             "main kernel", "compute p-values"), p.as_row()):
        print(f"  {name:<22} {seconds * 1000:8.2f} ms")

    # --- did we find the planted genes? -----------------------------------
    hits = parallel.significant(alpha=0.05)
    true_set = set(truth.de_genes.tolist())
    print(f"\nsignificant at FWER 0.05: {len(hits)} genes "
          f"({len(set(hits.tolist()) & true_set)} of {truth.n_de} planted)")


if __name__ == "__main__":
    main()
