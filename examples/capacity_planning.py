#!/usr/bin/env python
"""Capacity planning: which platform, how many processes?

The paper's conclusion frames SPRINT as a ladder — "exercise and refine
workflows on lower end, less expensive platforms before executing more
ambitious and potentially costly runs on high-end facilities".  This
example uses the calibrated platform models to make that advice concrete
for two workloads:

* a refinement run (500 genes, 5 000 permutations) and
* the production run of the paper's Table VI (36 612 genes, 2 million
  permutations),

answering: what does each platform deliver, where does adding cores stop
paying, and who can meet a deadline?

Run: ``python examples/capacity_planning.py``
"""

from repro.cluster import (
    compare_platforms,
    get_platform,
    recommend_procs,
    required_procs,
    serial_r_estimate,
)


def report(title, rows, permutations, deadline):
    print(f"== {title}")
    print(f"   workload: {rows:,} genes x {permutations:,} permutations, "
          f"deadline {deadline:,.0f} s")
    serial_r = serial_r_estimate(permutations, rows)
    print(f"   serial R estimate: {serial_r:,.0f} s "
          f"({serial_r / 3600:.1f} h)")
    print(f"   {'platform':<10} {'best (s)':>10} {'@P':>5} "
          f"{'efficient P':>12} {'meets deadline':>15}")
    for advice in compare_platforms(rows=rows, permutations=permutations,
                                    deadline_seconds=deadline):
        deadline_str = (f"yes (P={advice.procs_for_deadline})"
                        if advice.meets_deadline() else "no")
        print(f"   {advice.platform:<10} {advice.best_seconds:>10.1f} "
              f"{advice.best_run.nprocs:>5} "
              f"{advice.recommended_run.nprocs:>12} {deadline_str:>15}")
    print()


def main() -> None:
    report("refinement workload (desktop-sized)", 500, 5_000, 120)
    report("paper benchmark workload (Tables I-V)", 6_102, 150_000, 60)
    report("production workload (Table VI, largest row)", 73_224,
           2_000_000, 900)

    # drill into the production run on HECToR
    platform = get_platform("hector")
    rows, permutations = 73_224, 2_000_000
    run = recommend_procs(platform, rows=rows, permutations=permutations,
                          min_efficiency=0.5)
    print(f"HECToR recommendation for the production run: "
          f"P={run.nprocs} -> {run.total:,.1f} s "
          f"(kernel {run.kernel:,.1f} s)")
    for deadline in (3_600, 900, 300):
        procs = required_procs(platform, rows=rows,
                               permutations=permutations,
                               deadline_seconds=deadline)
        answer = f"P={procs}" if procs else "not achievable"
        print(f"  to finish within {deadline:>5,} s: {answer}")


if __name__ == "__main__":
    main()
