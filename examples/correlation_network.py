#!/usr/bin/env python
"""Gene co-expression network with SPRINT's ``pcor``.

The SPRINT prototype's first function was a parallel correlation for
exactly this workflow (Hill et al. 2008, reference [2] of the paper):
correlate every gene against every other gene, threshold, and analyse the
resulting co-expression network.  This example runs the data-divided
parallel ``pcor`` over an SPMD world, verifies it against the serial
``cor``, and mines the network with ``networkx``.

Run: ``python examples/correlation_network.py``
"""

import numpy as np
import networkx as nx

from repro.corr import cor, pcor
from repro.data import synthetic_expression


def make_modular_data(n_genes=120, n_samples=40, n_modules=4, seed=29):
    """Expression data with planted co-expression modules."""
    rng = np.random.default_rng(seed)
    X, _ = synthetic_expression(n_genes, n_samples, de_fraction=0.0,
                                seed=seed)
    module_of = rng.integers(0, n_modules, size=n_genes)
    drivers = rng.normal(size=(n_modules, n_samples))
    strength = 2.0
    X += strength * drivers[module_of]
    return X, module_of


def main() -> None:
    X, module_of = make_modular_data()
    print(f"dataset: {X.shape[0]} genes x {X.shape[1]} samples, "
          f"{len(set(module_of))} planted co-expression modules")

    # --- parallel correlation matrix --------------------------------------
    # pcor launches its own SPMD world from the execution-backend registry;
    # "shm" forks OS ranks and broadcasts X through shared memory.
    R = pcor(X, backend="shm", ranks=4)
    np.testing.assert_allclose(R, cor(X), rtol=1e-10, atol=1e-12)
    print(f"pcor on 4 'shm' ranks == serial cor "
          f"({R.shape[0]}x{R.shape[1]} matrix)")

    # --- threshold into a network ------------------------------------------
    threshold = 0.75
    adjacency = (np.abs(R) >= threshold) & ~np.eye(len(R), dtype=bool)
    graph = nx.from_numpy_array(adjacency.astype(int))
    graph.remove_nodes_from(list(nx.isolates(graph)))
    components = list(nx.connected_components(graph))
    print(f"\n|r| >= {threshold}: {graph.number_of_nodes()} genes, "
          f"{graph.number_of_edges()} edges, "
          f"{len(components)} connected components")

    # --- do the components recover the planted modules? -------------------
    recovered = 0
    for comp in sorted(components, key=len, reverse=True)[:6]:
        modules = [module_of[g] for g in comp]
        dominant = max(set(modules), key=modules.count)
        purity = modules.count(dominant) / len(modules)
        print(f"  component of {len(comp):3d} genes -> module {dominant} "
              f"(purity {purity:.0%})")
        if purity > 0.9:
            recovered += 1
    print(f"\n{recovered} components map cleanly onto planted modules — "
          "the workflow SPRINT's pcor was built to scale.")


if __name__ == "__main__":
    main()
