"""Measured benchmark: service-tier throughput, latency, cache answers.

The service tier (:mod:`repro.serve`) load-balances pmaxT jobs over N
resident sessions.  This benchmark drives a :class:`~repro.serve.PoolManager`
with a burst of independent pmaxT jobs at each pool count and records the
saturation curve — jobs/s plus P50/P99 end-to-end latency (admission to
result) per pool count — and the cache short-circuit win: an exactly
repeated analysis answered from the shared result cache without touching a
pool, versus the cold pool-computed run.  The comparison is written to
``BENCH_service.json``.

``cache_hit_speedup`` is the scale-free ratio the CI bench-regression gate
defends; the pool-count curve is informational (its absolute shape depends
on the runner's core count).

Run standalone (writes the JSON next to the repository root)::

    PYTHONPATH=src python benchmarks/bench_service.py
    PYTHONPATH=src python benchmarks/bench_service.py \\
        --genes 2000 --jobs 16 --pool-counts 1 2 4

or through pytest (acceptance shape: a curve over >= 2 pool counts and a
real cache win)::

    PYTHONPATH=src python -m pytest benchmarks/bench_service.py -q
"""

from __future__ import annotations

import argparse
import json
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.data import synthetic_expression, two_class_labels
from repro.serve import PoolManager

# The acceptance shape: a burst of moderate pmaxT jobs, distinct seeds so
# every job is real work, over 1 and 2 pools.  Thread pools keep the
# measurement about the service layer (admission, dispatch, balancing)
# rather than process-spawn noise.
DEFAULT_GENES = 500
DEFAULT_SAMPLES = 40
DEFAULT_RANKS = 2
DEFAULT_B = 500
DEFAULT_JOBS = 8
DEFAULT_POOL_COUNTS = (1, 2)
DEFAULT_BACKEND = "threads"
RESULT_FILE = "BENCH_service.json"


def _run_burst(manager: PoolManager, X, labels, B: int, jobs: int) -> dict:
    """Submit ``jobs`` distinct pmaxT analyses; return throughput/latency."""
    start = time.perf_counter()
    handles = [
        manager.submit_pmaxt(X, labels, B=B, seed=1_000 + i)
        for i in range(jobs)
    ]
    for job in handles:
        job.result(timeout=600)
    wall = time.perf_counter() - start
    latencies = sorted(j.finished_at - j.submitted_at for j in handles)
    return {
        "jobs_per_s": jobs / wall,
        "wall_s": wall,
        "p50_latency_s": float(np.percentile(latencies, 50)),
        "p99_latency_s": float(np.percentile(latencies, 99)),
    }


def measure(
    n_genes=DEFAULT_GENES,
    n_samples=DEFAULT_SAMPLES,
    ranks=DEFAULT_RANKS,
    B=DEFAULT_B,
    jobs=DEFAULT_JOBS,
    pool_counts=DEFAULT_POOL_COUNTS,
    backend=DEFAULT_BACKEND,
    seed=5,
) -> dict:
    """Drive the service at each pool count; measure the cache answer win."""
    X, _ = synthetic_expression(
        n_genes, n_samples, n_class1=n_samples // 2, de_fraction=0.1, seed=seed
    )
    labels = two_class_labels(n_samples // 2, n_samples - n_samples // 2)

    # Saturation curve: the same burst of distinct jobs at each pool count
    # (no cache — every job is computed).  One warm-up job per manager so
    # the curve times dispatch over warm pools, not first-touch costs.
    curve = []
    for pools in pool_counts:
        with PoolManager(
            backend, ranks, pools=pools, max_queue=jobs + pools
        ) as manager:
            manager.submit_pmaxt(X, labels, B=50, seed=1).result(timeout=600)
            point = _run_burst(manager, X, labels, B, jobs)
            curve.append({"pools": pools, **point})

    # Cache short-circuit: the first submission computes and populates the
    # shared cache; the exact repeat is answered from disk at admission
    # time without occupying a pool.  The ratio is the gated claim.
    with tempfile.TemporaryDirectory() as cache_dir:
        with PoolManager(
            backend, ranks, pools=1, max_queue=4, cache_dir=cache_dir
        ) as manager:
            manager.submit_pmaxt(X, labels, B=50, seed=1).result(timeout=600)
            cold_job = manager.submit_pmaxt(X, labels, B=B, seed=2_000)
            cold = cold_job.result(timeout=600)
            cold_s = cold_job.finished_at - cold_job.submitted_at
            hit_job = manager.submit_pmaxt(X, labels, B=B, seed=2_000)
            hit = hit_job.result(timeout=600)
            hit_s = hit_job.finished_at - hit_job.submitted_at
            assert hit_job.cached and not cold_job.cached
            assert manager.stats()["cache_answers"] == 1

    np.testing.assert_array_equal(cold.adjp, hit.adjp)  # same answer

    return {
        "benchmark": "service",
        "matrix": [n_genes, n_samples],
        "B": B,
        "ranks": ranks,
        "backend": backend,
        "jobs_per_point": jobs,
        "pools_curve": curve,
        "cold_job_s": cold_s,
        "cache_answer_s": hit_s,
        "cache_hit_speedup": cold_s / hit_s,
    }


def test_service_curve_and_cache_win():
    """ISSUE acceptance: a >= 2-point pool curve and a real cache win."""
    result = measure(
        n_genes=300, n_samples=24, B=300, jobs=4, pool_counts=(1, 2)
    )
    assert len(result["pools_curve"]) >= 2
    assert {p["pools"] for p in result["pools_curve"]} == {1, 2}
    for point in result["pools_curve"]:
        assert point["jobs_per_s"] > 0
        assert point["p50_latency_s"] <= point["p99_latency_s"]
    assert result["cache_hit_speedup"] > 1.0, (
        f"cache-answered job ({result['cache_answer_s']:.4f}s) should beat "
        f"the cold pool-computed job ({result['cold_job_s']:.4f}s)"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Measure service-tier throughput/latency vs pool count "
        "and the result-cache short-circuit win."
    )
    parser.add_argument("--genes", type=int, default=DEFAULT_GENES)
    parser.add_argument("--samples", type=int, default=DEFAULT_SAMPLES)
    parser.add_argument("--ranks", type=int, default=DEFAULT_RANKS)
    parser.add_argument("--b", type=int, default=DEFAULT_B, dest="B")
    parser.add_argument("--jobs", type=int, default=DEFAULT_JOBS,
                        help="burst size per pool count")
    parser.add_argument("--pool-counts", type=int, nargs="+",
                        default=list(DEFAULT_POOL_COUNTS))
    parser.add_argument("--backend", default=DEFAULT_BACKEND)
    parser.add_argument(
        "--out",
        default=None,
        help=f"output JSON path (default: {RESULT_FILE} in the repository root)",
    )
    args = parser.parse_args(argv)

    result = measure(
        args.genes, args.samples, args.ranks, args.B, args.jobs,
        tuple(args.pool_counts), args.backend,
    )

    out = (
        Path(args.out)
        if args.out
        else Path(__file__).resolve().parent.parent / RESULT_FILE
    )
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(result, indent=2) + "\n")

    print(
        f"service: pmaxT {result['matrix'][0]}x{result['matrix'][1]}, "
        f"B={result['B']}, {result['jobs_per_point']} jobs/burst, "
        f"ranks={result['ranks']} on '{result['backend']}'"
    )
    for point in result["pools_curve"]:
        print(
            f"  pools={point['pools']}: {point['jobs_per_s']:6.2f} jobs/s  "
            f"P50 {point['p50_latency_s'] * 1e3:7.1f} ms  "
            f"P99 {point['p99_latency_s'] * 1e3:7.1f} ms"
        )
    print(
        f"  cache answer {result['cache_answer_s'] * 1e3:.1f} ms vs cold "
        f"{result['cold_job_s'] * 1e3:.1f} ms "
        f"({result['cache_hit_speedup']:.1f}x)"
    )
    print(f"written to {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
