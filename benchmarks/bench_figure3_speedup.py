"""Regenerate paper Figure 3 — speed-up curves on all five platforms.

Computes the total-execution-time speed-up series for HECToR, ECDF, EC2,
Ness and the quad-core desktop against the optimal line, and asserts the
figure's visual story: HECToR hugs the optimal the longest, the platform
ordering at shared process counts, and every curve's monotone growth.

Print the figure with: ``python -m repro.bench.figures --figure 3``.
"""

from repro.bench.figures import render_figure3, speedup_series


def test_figure3_series(benchmark):
    series = benchmark(speedup_series, "total")

    hector = dict(series["hector"])
    ecdf = dict(series["ecdf"])
    ec2 = dict(series["ec2"])
    ness = dict(series["ness"])
    quad = dict(series["quadcore"])

    # HECToR closest to optimal at its top end (paper: 313 at 512).
    assert hector[512] > 280
    # ordering at the largest shared process count (32): HECToR > ECDF > EC2
    assert hector[32] > ecdf[32] > ec2[32]
    # Ness beats EC2 at 16 (shared memory vs virtual ethernet).
    assert ness[16] < hector[16] and ness[16] > ec2[16] * 0.9
    # every curve is monotone increasing in P
    for name in ("hector", "ecdf", "ec2", "ness", "quadcore"):
        values = [s for _, s in series[name]]
        assert all(b > a for a, b in zip(values, values[1:])), name
    # the optimal reference line is exactly y = x
    assert all(s == p for p, s in series["optimal"])
    # quad-core end point near the paper's 3.37
    assert 3.0 < quad[4] < 3.7


def test_figure3_ascii_rendering(benchmark):
    text = benchmark(render_figure3)
    assert "Figure 3" in text and "legend" in text
    # all five platforms plotted
    for glyph in ("H", "E", "A", "N", "Q"):
        assert glyph in text
