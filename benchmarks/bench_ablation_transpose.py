"""Ablation: in-place vs copying transposition (future-work item 2).

The paper's Section 6 suggests replacing the allocate-and-copy transpose in
the create-data step with an in-place algorithm.  This bench quantifies the
trade on the paper-shaped matrix: the cycle-following in-place transpose
saves the second buffer but pays Python-loop time, while NumPy's copying
transpose is fast but momentarily doubles the data footprint.
"""

import numpy as np
import pytest

from repro.core.transpose import transpose_copy, transpose_inplace


@pytest.fixture(scope="module")
def matrix():
    rng = np.random.default_rng(14)
    # paper aspect ratio, scaled to keep the pure-Python path in budget
    return rng.normal(size=(1_526, 19))


def test_transpose_copy(benchmark, matrix):
    out = benchmark(transpose_copy, matrix)
    assert out.shape == (19, 1_526)


def test_transpose_inplace(benchmark, matrix):
    def run():
        return transpose_inplace(matrix.copy())

    out = benchmark(run)
    np.testing.assert_array_equal(out, matrix.T)
