"""Regenerate paper Figure 2 — the permutation distribution scheme.

Renders the rank → permutation map with the paper's own illustration
numbers (23 permutations, 3 processes) and checks the drawn invariants:
the master owns the observed permutation, every other rank skips it, and
the chunks tile the serial sequence.  Also sweeps realistic (B, P) pairs
to time the partition arithmetic itself.
"""

from repro.bench.figures import render_figure2
from repro.core.partition import partition_permutations


def test_figure2_rendering(benchmark):
    text = benchmark(render_figure2)
    assert "rank 0: 1 2 3 4 5 6 7 8" in text
    assert text.count("1(skip)") == 2
    assert "sum of counts = 23" in text


def test_figure2_partition_arithmetic(benchmark):
    def sweep():
        plans = []
        for procs in (1, 2, 4, 8, 16, 32, 64, 128, 256, 512):
            plans.append(partition_permutations(150_000, procs))
        return plans

    plans = benchmark(sweep)
    for plan in plans:
        assert sum(c.count for c in plan.chunks) == 150_000
        assert plan.chunks[0].includes_observed
        assert not any(c.includes_observed for c in plan.chunks[1:])
