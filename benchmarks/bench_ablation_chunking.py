"""Ablation: the kernel's permutation batch size.

DESIGN.md calls batched GEMM evaluation the main optimisation this port
adds over the paper's one-permutation-at-a-time C loop.  This ablation
times the same workload at batch sizes 1 (the paper's structure), 16, 64
(default) and 256, and asserts the counts are invariant — the batching is
purely a performance knob.
"""

import numpy as np
import pytest

from repro import mt_maxT
from repro.data import synthetic_expression, two_class_labels


@pytest.fixture(scope="module")
def dataset():
    X, _ = synthetic_expression(500, 24, n_class1=12, seed=8)
    return X, two_class_labels(12, 12)


@pytest.fixture(scope="module")
def reference(dataset):
    X, labels = dataset
    return mt_maxT(X, labels, B=400, seed=9, chunk_size=64)


@pytest.mark.parametrize("chunk_size", [1, 16, 64, 256])
def test_chunk_size(benchmark, dataset, reference, chunk_size):
    X, labels = dataset
    result = benchmark(mt_maxT, X, labels, B=400, seed=9,
                       chunk_size=chunk_size)
    np.testing.assert_array_equal(result.rawp, reference.rawp)
    np.testing.assert_array_equal(result.adjp, reference.adjp)
