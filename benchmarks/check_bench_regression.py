"""CI bench-regression gate: smoke-run JSONs vs the committed records.

The committed ``BENCH_*.json`` files record full-scale runs on a developer
machine; CI re-runs each benchmark at smoke scale on whatever runner it
gets.  Absolute times are therefore not comparable — but the *ratios* the
benchmarks exist to defend (shm-vs-pickled broadcast speedup, pooled-kernel
speedup, warm-vs-cold session speedup) are scale-free claims that must not
quietly decay.

This checker walks each (smoke, committed) JSON pair, collects every
numeric leaf whose key names a ratio (``*speedup*``), and fails when a
smoke ratio has regressed by more than the tolerance factor relative to
the committed record::

    python benchmarks/check_bench_regression.py \\
        --pair /tmp/smoke_backend.json:BENCH_backend.json:3.5 \\
        --pair /tmp/smoke_session.json:BENCH_session.json

A pair's optional third field overrides ``--tolerance`` (default 2.0)
for that pair alone: compute-bound ratios (kernel, permgen, session
warm-vs-cold) are scale-free and hold the strict default, while
bandwidth-bound ones (the shm-vs-pickled wire ratios, which swing with
the runner's core count and memory system) get a documented wider bound
— the invariant still defended there is that the win does not collapse.

Exit status 0 = no regression beyond tolerance, 1 = regression (or a
malformed pair).  Keys present on only one side are reported and skipped,
so adding metrics to a benchmark never breaks older records.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

#: A numeric leaf participates in the gate when its key contains one of
#: these substrings (case-insensitive).
RATIO_KEY_MARKERS = ("speedup",)


def collect_ratio_keys(node, prefix=""):
    """Flatten nested dicts to ``{dotted.path: value}`` for ratio leaves."""
    out = {}
    if not isinstance(node, dict):
        return out
    for key, value in node.items():
        path = f"{prefix}.{key}" if prefix else key
        if isinstance(value, dict):
            out.update(collect_ratio_keys(value, path))
        elif isinstance(value, (int, float)) and any(
            marker in key.lower() for marker in RATIO_KEY_MARKERS
        ):
            out[path] = float(value)
    return out


def compare(smoke: dict, committed: dict, tolerance: float):
    """Yield ``(path, smoke_value, committed_value, ok)`` per shared ratio.

    A smoke ratio passes when it is at least ``committed / tolerance`` —
    i.e. it may be up to ``tolerance`` times worse than the committed
    record (smoke scale and runner noise), but not more.
    """
    smoke_ratios = collect_ratio_keys(smoke)
    committed_ratios = collect_ratio_keys(committed)
    for path in sorted(set(smoke_ratios) & set(committed_ratios)):
        observed, recorded = smoke_ratios[path], committed_ratios[path]
        ok = observed >= recorded / tolerance
        yield path, observed, recorded, ok
    for path in sorted(set(committed_ratios) - set(smoke_ratios)):
        print(f"  note: {path} only in the committed record; skipped")
    for path in sorted(set(smoke_ratios) - set(committed_ratios)):
        print(f"  note: {path} only in the smoke run; skipped")


def check_pair(smoke_path: str, committed_path: str, tolerance: float) -> bool:
    smoke = json.loads(Path(smoke_path).read_text())
    committed = json.loads(Path(committed_path).read_text())
    name = committed.get("benchmark", committed_path)
    print(f"{name}: smoke={smoke_path} committed={committed_path}")
    all_ok, seen = True, 0
    for path, observed, recorded, ok in compare(smoke, committed, tolerance):
        seen += 1
        verdict = "ok" if ok else f"REGRESSION (>{tolerance:g}x)"
        print(f"  {path}: smoke {observed:.3f} vs committed {recorded:.3f}  {verdict}")
        all_ok = all_ok and ok
    if seen == 0:
        print("  ERROR: no shared ratio keys to compare")
        return False
    return all_ok


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail when a smoke benchmark ratio regresses vs the "
        "committed BENCH_*.json record."
    )
    parser.add_argument(
        "--pair",
        action="append",
        required=True,
        metavar="SMOKE:COMMITTED[:TOLERANCE]",
        help="smoke-run JSON and committed record, colon-separated, with "
        "an optional per-pair tolerance override (repeatable)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=2.0,
        help="default maximum allowed regression factor (default: 2.0)",
    )
    args = parser.parse_args(argv)

    failed = False
    for pair in args.pair:
        parts = pair.split(":")
        if len(parts) == 2:
            smoke_path, committed_path = parts
            tolerance = args.tolerance
        elif len(parts) == 3:
            smoke_path, committed_path = parts[0], parts[1]
            try:
                tolerance = float(parts[2])
            except ValueError:
                print(f"malformed --pair {pair!r} (tolerance not a number)")
                failed = True
                continue
        else:
            print(
                f"malformed --pair {pair!r} "
                "(expected SMOKE:COMMITTED[:TOLERANCE])"
            )
            failed = True
            continue
        if not check_pair(smoke_path, committed_path, tolerance):
            failed = True
    if failed:
        print("bench regression gate: FAIL")
        return 1
    print("bench regression gate: ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
