"""Regenerate paper Table V — pmaxT profile on quad-core desktop, P = 1..4.

Workload: B = 150 000 permutations on the 6 102 x 76 expression matrix.
The calibrated quadcore platform model executes the real partition plan per
process count and prices the five pmaxT sections; the shape assertions
guard the regeneration, and pytest-benchmark times it.

Print the table with: `python -m repro.bench.tables --table 5 --paper`.
"""

from bench_util import assert_profile_shape, regenerate_profile_table


def test_table5_quadcore(benchmark):
    runs = benchmark(regenerate_profile_table, "quadcore")
    assert_profile_shape("quadcore", runs)
