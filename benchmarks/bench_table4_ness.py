"""Regenerate paper Table IV — pmaxT profile on Ness SMP, P = 1..16.

Workload: B = 150 000 permutations on the 6 102 x 76 expression matrix.
The calibrated ness platform model executes the real partition plan per
process count and prices the five pmaxT sections; the shape assertions
guard the regeneration, and pytest-benchmark times it.

Print the table with: `python -m repro.bench.tables --table 4 --paper`.
"""

from bench_util import assert_profile_shape, regenerate_profile_table


def test_table4_ness(benchmark):
    runs = benchmark(regenerate_profile_table, "ness")
    assert_profile_shape("ness", runs)
