"""Helpers shared by the benchmark modules."""

from __future__ import annotations

from repro.bench.paper import PROFILE_TABLES
from repro.cluster import get_platform, simulate_scaling

__all__ = ["regenerate_profile_table", "assert_profile_shape"]


def regenerate_profile_table(platform_name: str):
    """Simulate the full scaling sweep for one platform; returns runs."""
    platform = get_platform(platform_name)
    return simulate_scaling(platform)


def assert_profile_shape(platform_name: str, runs, *, kernel_tol=0.15,
                         speedup_tol=0.15):
    """Assert the regenerated table matches the paper's shape.

    Loose bounds — the tight per-point bounds live in the test suite; the
    benches only guard against a silently broken regeneration.
    """
    table = PROFILE_TABLES[platform_name]
    base = runs[0]
    for run, row in zip(runs, table.rows):
        assert run.nprocs == row.procs
        kerr = abs(run.kernel - row.main_kernel) / row.main_kernel
        assert kerr < kernel_tol, \
            f"{platform_name} P={run.nprocs}: kernel off by {kerr:.1%}"
        serr = abs(run.speedup_vs(base) - row.speedup_total) \
            / row.speedup_total
        assert serr < speedup_tol, \
            f"{platform_name} P={run.nprocs}: speedup off by {serr:.1%}"
