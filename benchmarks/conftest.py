"""Shared configuration for the benchmark suite.

Two benchmark families live here:

* ``bench_table*.py`` / ``bench_figure*.py`` — regenerate each table and
  figure of the paper through the calibrated platform simulator and assert
  its shape; ``pytest-benchmark`` times the regeneration itself (cheap) so
  the whole paper reproduction is wired into ``pytest benchmarks/
  --benchmark-only``.
* ``bench_measured_*.py`` / ``bench_ablation_*.py`` — measure the *actual*
  Python implementation on this machine: kernel throughput per statistic,
  generator costs, ThreadComm scaling and the design-choice ablations
  called out in DESIGN.md.
"""

from __future__ import annotations

import sys
from pathlib import Path

# Make `import bench_util` work regardless of pytest rootdir configuration.
sys.path.insert(0, str(Path(__file__).parent))
