"""Measured benchmarks: individual pmaxT components.

Times the pieces the five-section profile decomposes into: statistic batch
evaluation (the kernel's inner loop), permutation generation (both
generator families, both sampling modes), and the p-value assembly.
"""

import numpy as np
import pytest

from repro.core.adjust import pvalues_from_counts, significance_order
from repro.data import synthetic_expression, two_class_labels
from repro.permute import (
    CompleteTwoSample,
    RandomLabelShuffle,
    StoredPermutations,
)
from repro.stats import make_statistic


@pytest.fixture(scope="module")
def dataset():
    X, _ = synthetic_expression(1_000, 40, n_class1=20, seed=5)
    return X, two_class_labels(20, 20)


@pytest.mark.parametrize("test", ["t", "t.equalvar", "wilcoxon", "f"])
def test_statistic_batch_evaluation(benchmark, dataset, test):
    """One 64-permutation batch over 1 000 genes (the kernel's unit)."""
    X, labels = dataset
    if test == "f":
        labels = np.repeat(np.arange(4), 10)
    stat = make_statistic(test, X, labels)
    rng = np.random.default_rng(6)
    encs = np.stack([rng.permutation(labels) for _ in range(64)])
    out = benchmark(stat.batch, encs)
    assert out.shape == (1_000, 64)


def test_generator_fixed_seed(benchmark, dataset):
    _, labels = dataset

    def generate():
        gen = RandomLabelShuffle(labels, 2_000, seed=1, fixed_seed=True)
        total = 0
        while gen.position < gen.nperm:
            total += gen.take_batch(min(64, gen.nperm - gen.position)).shape[0]
        return total

    assert benchmark(generate) == 2_000


def test_generator_stream(benchmark, dataset):
    _, labels = dataset

    def generate():
        gen = RandomLabelShuffle(labels, 2_000, seed=1, fixed_seed=False)
        total = 0
        while gen.position < gen.nperm:
            total += gen.take_batch(min(64, gen.nperm - gen.position)).shape[0]
        return total

    assert benchmark(generate) == 2_000


def test_generator_complete_unranking(benchmark):
    labels = two_class_labels(6, 6)  # C(12,6) = 924 arrangements

    def generate():
        gen = CompleteTwoSample(labels)
        return gen.take_batch(gen.nperm).shape[0]

    assert benchmark(generate) == 924


def test_generator_skip_cost_fixed_seed(benchmark, dataset):
    """O(1) forwarding: skipping 1.9M permutations must be instant."""
    _, labels = dataset

    def skip():
        gen = RandomLabelShuffle(labels, 2_000_000, seed=1, fixed_seed=True)
        gen.skip(1_900_000)
        return gen.position

    assert benchmark(skip) == 1_900_000


def test_stored_permutation_materialisation(benchmark, dataset):
    _, labels = dataset

    def materialise():
        source = RandomLabelShuffle(labels, 2_000, seed=2, fixed_seed=False)
        return StoredPermutations(source).nbytes

    assert benchmark(materialise) > 0


def test_pvalue_assembly(benchmark):
    """The compute-p-values section at the paper's 6 102-gene scale."""
    m, B = 6_102, 150_000
    rng = np.random.default_rng(7)
    scores = rng.normal(size=m)
    order = significance_order(scores)
    raw = rng.integers(1, B, size=m)
    adj = np.sort(rng.integers(1, B, size=m))

    rawp, adjp = benchmark(pvalues_from_counts, raw, adj, order, B)
    assert rawp.shape == (m,)
    assert (np.diff(adjp[order]) >= 0).all()
