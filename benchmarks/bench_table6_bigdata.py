"""Regenerate paper Table VI — large exon-array datasets on 256 HECToR cores.

Two datasets (36 612 x 76 and 73 224 x 76) at 0.5M/1M/2M permutations,
simulated on the calibrated HECToR model, against the serial-R estimate
(itself the calibrated affine per-permutation model solved from the paper's
own extrapolations).

Print the table with: ``python -m repro.bench.tables --table 6 --paper``.
"""

from repro.bench.paper import TABLE6_BIGDATA, TABLE6_PROCS
from repro.cluster import get_platform, serial_r_estimate, simulate_pmaxt


def _regenerate():
    platform = get_platform("hector")
    rows = []
    for ref in TABLE6_BIGDATA:
        run = simulate_pmaxt(platform, TABLE6_PROCS, rows=ref.n_genes,
                             permutations=ref.permutations)
        rows.append((ref, run.total, serial_r_estimate(ref.permutations,
                                                       ref.n_genes)))
    return rows


def test_table6_bigdata(benchmark):
    rows = benchmark(_regenerate)
    for ref, total, serial in rows:
        # totals within 15% of the paper, serial estimates exact
        assert abs(total - ref.total_seconds) / ref.total_seconds < 0.15
        assert abs(serial - ref.serial_estimate_seconds) \
            / ref.serial_estimate_seconds < 1e-6
    # the paper's headline shapes
    by_key = {(r.n_genes, r.permutations): t for r, t, _ in rows}
    assert 1.8 < by_key[(73_224, 500_000)] / by_key[(36_612, 500_000)] < 2.2
    assert 3.5 < by_key[(36_612, 2_000_000)] / by_key[(36_612, 500_000)] < 4.5
