"""Measured benchmarks: real SPMD scaling of pmaxT on this machine.

Runs the actual ThreadComm world at P = 1, 2, 4.  NumPy's BLAS releases the
GIL, so on a multicore host the kernel overlaps; on a single-core host
(like the CI container) these measure the parallel machinery's overhead —
either way the *result* must stay identical to the serial run, which each
bench asserts.
"""

import numpy as np
import pytest

from repro.bench.runner import measured_workload, run_parallel, run_serial


@pytest.fixture(scope="module")
def workload():
    return measured_workload("t", n_genes=300, n_samples=24, B=600)


@pytest.fixture(scope="module")
def serial_result(workload):
    return run_serial(workload)


@pytest.mark.parametrize("nprocs", [1, 2, 4])
def test_pmaxt_threadcomm(benchmark, workload, serial_result, nprocs):
    result = benchmark(run_parallel, workload, nprocs)
    assert result.nranks == nprocs
    np.testing.assert_array_equal(result.rawp, serial_result.rawp)
    np.testing.assert_array_equal(result.adjp, serial_result.adjp)


def test_sprint_session_overhead(benchmark, workload, serial_result):
    """Full framework path: session + command broadcast + pmaxT."""
    from repro.sprint import SprintSession

    def run():
        with SprintSession(nprocs=2) as sprint:
            return sprint.pmaxT(workload.X, workload.classlabel,
                                test=workload.test, B=workload.B)

    result = benchmark(run)
    np.testing.assert_array_equal(result.rawp, serial_result.rawp)
