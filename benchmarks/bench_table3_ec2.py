"""Regenerate paper Table III — pmaxT profile on Amazon EC2, P = 1..32.

Workload: B = 150 000 permutations on the 6 102 x 76 expression matrix.
The calibrated ec2 platform model executes the real partition plan per
process count and prices the five pmaxT sections; the shape assertions
guard the regeneration, and pytest-benchmark times it.

Print the table with: `python -m repro.bench.tables --table 3 --paper`.
"""

from bench_util import assert_profile_shape, regenerate_profile_table


def test_table3_ec2(benchmark):
    runs = benchmark(regenerate_profile_table, "ec2")
    assert_profile_shape("ec2", runs)
