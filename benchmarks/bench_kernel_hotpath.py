"""Measured benchmark: the ISSUE-2 kernel hot path, before vs after.

Three measurements, written to ``BENCH_kernel.json``:

1. **Permutation generation throughput** — the pre-PR fixed-seed path
   built one seeded ``np.random.Generator`` per index and stacked a Python
   list of rows; the rewrite generates the whole batch from one
   counter-based key block.  The pre-PR construction is reproduced
   verbatim in ``_legacy_*_rows`` below (it is a *different* fixed-seed
   sequence — the ISSUE-2 keystream redefinition — so the comparison is
   work-per-permutation, which is identical by construction: one uniform
   resample per index).  Measured at the acceptance shape (n~100, B~10k).
2. **End-to-end ``run_kernel``** — the pre-PR batch loop (legacy scalar
   permutation generation, the legacy allocating Welch moments engine
   reproduced verbatim in ``_LegacyWelch``, a dozen fresh ``(m, nb)``
   temporaries per batch) against the workspace kernel on a 5000x100
   matrix.  As a correctness guard, the workspace kernel is also asserted
   bit-identical against an allocating loop over the *current* statistic
   on every run.
3. **float32 vs float64** — the opt-in reduced-precision mode's further
   win on the same problem.

Run standalone (writes the JSON next to the repository root)::

    PYTHONPATH=src python benchmarks/bench_kernel_hotpath.py
    PYTHONPATH=src python benchmarks/bench_kernel_hotpath.py \
        --genes 1000 --samples 60 --b-perm 2000 --b-kernel 400 --repeats 1

or through pytest (small workload, asserts the wins)::

    PYTHONPATH=src python -m pytest benchmarks/bench_kernel_hotpath.py -q
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.core.adjust import side_adjust, successive_maxima
from repro.core.kernel import (
    DEFAULT_CHUNK,
    KernelCounts,
    compute_observed,
    run_kernel,
    tie_tolerance,
)
from repro.core.options import build_generator, build_statistic, validate_options
from repro.data import block_labels, two_class_labels
from repro.permute import DEFAULT_SEED

DEFAULT_GENES = 5_000
DEFAULT_SAMPLES = 100
DEFAULT_B_PERM = 10_000
DEFAULT_B_KERNEL = 2_000
DEFAULT_REPEATS = 3
RESULT_FILE = "BENCH_kernel.json"


def _best(fn, repeats):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


# ---------------------------------------------------------------------------
# The pre-PR implementations, reproduced verbatim
# ---------------------------------------------------------------------------

def _legacy_rng(seed, index):
    """Pre-PR fixed-seed mode: a fresh seeded RNG per permutation index."""
    return np.random.default_rng([np.uint64(seed), np.uint64(index)])


def _legacy_label_rows(labels, seed, start, count):
    rows = [_legacy_rng(seed, start + i).permutation(labels)
            for i in range(count)]
    return np.stack(rows).astype(np.int64, copy=False)


def _legacy_sign_rows(npairs, seed, start, count):
    rows = [_legacy_rng(seed, start + i).integers(0, 2, size=npairs,
                                                  dtype=np.int64) * 2 - 1
            for i in range(count)]
    return np.stack(rows).astype(np.int64, copy=False)


def _legacy_block_rows(blocks, seed, start, count):
    nblocks, k = blocks.shape
    rows = []
    for i in range(count):
        rng = _legacy_rng(seed, start + i)
        out = np.empty((nblocks, k), dtype=np.int64)
        for b in range(nblocks):
            out[b] = blocks[b][rng.permutation(k)]
        rows.append(out.reshape(-1))
    return np.stack(rows).astype(np.int64, copy=False)


class _LegacyWelch:
    """Pre-PR Welch-t batch engine: allocating moments, fresh temporaries."""

    def __init__(self, X):
        V = ~np.isnan(X)
        self.V = V.astype(np.float64)
        Xz = np.where(V, X, 0.0)
        self.Xz = Xz
        self.Xz2 = Xz * Xz
        self.n_valid = self.V.sum(axis=1)
        self.sum_all = self.Xz.sum(axis=1)
        self.sumsq_all = self.Xz2.sum(axis=1)

    def batch(self, encodings):
        G = encodings.T.astype(np.float64)
        N1 = self.V @ G
        S1 = self.Xz @ G
        Q1 = self.Xz2 @ G
        N0 = self.n_valid[:, None] - N1
        S0 = self.sum_all[:, None] - S1
        Q0 = self.sumsq_all[:, None] - Q1
        with np.errstate(invalid="ignore", divide="ignore"):
            mean1 = S1 / N1
            mean0 = S0 / N0
            var1 = (Q1 - S1 * mean1) / (N1 - 1.0)
            var0 = (Q0 - S0 * mean0) / (N0 - 1.0)
            np.maximum(var1, 0.0, out=var1)
            np.maximum(var0, 0.0, out=var0)
            se = np.sqrt(var1 / N1 + var0 / N0)
            t = (mean1 - mean0) / se
        bad = (N1 < 2) | (N0 < 2) | (se == 0.0)
        t[bad] = np.nan
        return t


def _legacy_kernel(X, labels, observed, count, seed=DEFAULT_SEED,
                   chunk_size=DEFAULT_CHUNK):
    """The pre-PR run_kernel: scalar permutation rows, allocating batches."""
    stat = _LegacyWelch(X)
    counts = KernelCounts.zeros(observed.m)
    counts.raw += 1
    counts.adjusted += 1
    counts.nperm += 1
    order = observed.order
    untestable = observed.untestable
    with np.errstate(invalid="ignore"):
        tol = tie_tolerance(np.float64) * np.maximum(
            np.abs(observed.scores), 1.0)
        tol[~np.isfinite(tol)] = 0.0
    threshold = (observed.scores - tol)[:, None]
    threshold_ordered = threshold[order]
    position = 1
    remaining = count - 1
    while remaining > 0:
        nb = min(chunk_size, remaining)
        enc = _legacy_label_rows(labels, seed, position, nb)
        position += nb
        with np.errstate(invalid="ignore", divide="ignore"):
            perm_stats = stat.batch(enc)
        scores = side_adjust(perm_stats, "abs")
        if untestable.any():
            scores[untestable, :] = -np.inf
        counts.raw += (scores >= threshold).sum(axis=1)
        u = successive_maxima(scores[order])
        counts.adjusted += (u >= threshold_ordered).sum(axis=1)
        counts.nperm += nb
        remaining -= nb
    return counts


def _allocating_reference(stat, generator, observed, count,
                          chunk_size=DEFAULT_CHUNK):
    """The current statistic driven through the allocating (work=None) loop;
    must be bit-identical to the workspace kernel."""
    counts = KernelCounts.zeros(observed.m)
    counts.raw += 1
    counts.adjusted += 1
    counts.nperm += 1
    generator.reset()
    generator.skip(1)
    order = observed.order
    untestable = observed.untestable
    rel = tie_tolerance(stat.compute_dtype)
    with np.errstate(invalid="ignore"):
        tol = rel * np.maximum(np.abs(observed.scores), 1.0)
        tol[~np.isfinite(tol)] = 0.0
    threshold = (observed.scores - tol)[:, None].astype(stat.compute_dtype,
                                                        copy=False)
    threshold_ordered = threshold[order]
    remaining = count - 1
    while remaining > 0:
        nb = min(chunk_size, remaining)
        enc = np.stack(list(generator.take(nb))).astype(np.int64, copy=False)
        perm_stats = stat.batch(enc)
        scores = side_adjust(perm_stats, "abs")
        if untestable.any():
            scores[untestable, :] = -np.inf
        counts.raw += (scores >= threshold).sum(axis=1)
        u = successive_maxima(scores[order])
        counts.adjusted += (u >= threshold_ordered).sum(axis=1)
        counts.nperm += nb
        remaining -= nb
    return counts


# ---------------------------------------------------------------------------
# 1. Permutation generation
# ---------------------------------------------------------------------------

def measure_permgen(n_samples, b_perm, repeats) -> dict:
    from repro.permute import (
        RandomBlockShuffle,
        RandomLabelShuffle,
        RandomSigns,
    )

    labels = two_class_labels(n_samples // 2, n_samples - n_samples // 2)
    blocks = block_labels(max(2, n_samples // 4), 4)
    bmat = blocks.reshape(-1, 4)
    npairs = n_samples // 2
    families = {
        "label_shuffle": (
            lambda: RandomLabelShuffle(labels, b_perm + 1),
            lambda: _legacy_label_rows(labels, DEFAULT_SEED, 1, b_perm)),
        "signs": (
            lambda: RandomSigns(npairs, b_perm + 1),
            lambda: _legacy_sign_rows(npairs, DEFAULT_SEED, 1, b_perm)),
        "block_shuffle": (
            lambda: RandomBlockShuffle(blocks, 4, b_perm + 1),
            lambda: _legacy_block_rows(bmat, DEFAULT_SEED, 1, b_perm)),
    }
    out = {}
    for name, (make, legacy) in families.items():
        def batched():
            gen = make()
            gen.skip(1)
            return gen.take_batch(b_perm)

        # Consistency guard: the batch path must equal the scalar path of
        # the same (current) sequence before its time means anything.
        check = make()
        check.skip(1)
        head = np.stack(list(check.take(min(b_perm, 64))))
        assert np.array_equal(batched()[:len(head)], head), name

        legacy_s = _best(legacy, repeats)
        batch_s = _best(batched, repeats)
        out[name] = {
            "legacy_s": legacy_s,
            "batched_s": batch_s,
            "speedup": legacy_s / batch_s,
            "perms_per_s": b_perm / batch_s,
        }
    return out


# ---------------------------------------------------------------------------
# 2. The kernel loop
# ---------------------------------------------------------------------------

def _kernel_problem(n_genes, n_samples, b_kernel, dtype="float64", seed=1):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n_genes, n_samples))
    labels = two_class_labels(n_samples // 2, n_samples - n_samples // 2)
    options = validate_options(labels, test="t", B=b_kernel, dtype=dtype)
    stat = build_statistic(options, X, labels)
    generator = build_generator(options, labels)
    observed = compute_observed(stat, "abs")
    return X, labels, stat, generator, observed


def measure_kernel(n_genes, n_samples, b_kernel, repeats) -> dict:
    X, labels, stat, generator, observed = _kernel_problem(
        n_genes, n_samples, b_kernel)

    # Correctness guard: workspace loop == allocating loop, bit for bit.
    current = run_kernel(stat, generator, observed, "abs", 0, b_kernel)
    reference = _allocating_reference(stat, generator, observed, b_kernel)
    assert np.array_equal(current.raw, reference.raw)
    assert np.array_equal(current.adjusted, reference.adjusted)

    legacy_s = _best(
        lambda: _legacy_kernel(X, labels, observed, b_kernel), repeats)
    kernel_s = _best(
        lambda: run_kernel(stat, generator, observed, "abs", 0, b_kernel),
        repeats)

    _, _, stat32, gen32, obs32 = _kernel_problem(n_genes, n_samples,
                                                 b_kernel, dtype="float32")
    run_kernel(stat32, gen32, obs32, "abs", 0, min(b_kernel, 200))  # warm
    kernel32_s = _best(
        lambda: run_kernel(stat32, gen32, obs32, "abs", 0, b_kernel),
        repeats)

    return {
        "legacy_s": legacy_s,
        "workspace_s": kernel_s,
        "speedup": legacy_s / kernel_s,
        "float32_s": kernel32_s,
        "float32_speedup_vs_float64": kernel_s / kernel32_s,
        "us_per_perm": kernel_s / b_kernel * 1e6,
    }


def measure(n_genes=DEFAULT_GENES, n_samples=DEFAULT_SAMPLES,
            b_perm=DEFAULT_B_PERM, b_kernel=DEFAULT_B_KERNEL,
            repeats=DEFAULT_REPEATS) -> dict:
    permgen = measure_permgen(n_samples, b_perm, repeats)
    kernel = measure_kernel(n_genes, n_samples, b_kernel, repeats)
    return {
        "benchmark": "kernel_hotpath",
        "matrix": [n_genes, n_samples],
        "b_perm": b_perm,
        "b_kernel": b_kernel,
        "repeats": repeats,
        "permgen": permgen,
        "kernel": kernel,
        "permgen_speedup": permgen["label_shuffle"]["speedup"],
        "kernel_speedup": kernel["speedup"],
    }


def test_permgen_and_kernel_win():
    """Smoke acceptance at reduced scale: both rewrites must win."""
    result = measure(n_genes=800, n_samples=64, b_perm=3_000, b_kernel=500,
                     repeats=2)
    assert result["permgen_speedup"] > 1.5, result["permgen"]
    assert result["kernel_speedup"] > 1.0, result["kernel"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Time the pmaxT kernel hot path before/after ISSUE 2.")
    parser.add_argument("--genes", type=int, default=DEFAULT_GENES)
    parser.add_argument("--samples", type=int, default=DEFAULT_SAMPLES)
    parser.add_argument("--b-perm", type=int, default=DEFAULT_B_PERM)
    parser.add_argument("--b-kernel", type=int, default=DEFAULT_B_KERNEL)
    parser.add_argument("--repeats", type=int, default=DEFAULT_REPEATS)
    parser.add_argument("--out", default=None,
                        help=f"output JSON path (default: {RESULT_FILE} "
                        "in the repository root)")
    args = parser.parse_args(argv)

    result = measure(args.genes, args.samples, args.b_perm, args.b_kernel,
                     args.repeats)

    out = Path(args.out) if args.out else \
        Path(__file__).resolve().parent.parent / RESULT_FILE
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(result, indent=2) + "\n")

    print(f"matrix {args.genes}x{args.samples}, B_perm={args.b_perm}, "
          f"B_kernel={args.b_kernel}, best of {args.repeats}")
    for name, row in result["permgen"].items():
        print(f"  permgen {name:14s} legacy {row['legacy_s'] * 1e3:8.1f} ms"
              f"   batched {row['batched_s'] * 1e3:8.1f} ms"
              f"   speedup {row['speedup']:5.1f}x"
              f"   ({row['perms_per_s'] / 1e3:.0f}k perms/s)")
    k = result["kernel"]
    print(f"  kernel  {'float64':14s} legacy {k['legacy_s'] * 1e3:8.1f} ms"
          f"   workspace {k['workspace_s'] * 1e3:6.1f} ms"
          f"   speedup {k['speedup']:5.2f}x"
          f"   ({k['us_per_perm']:.0f} us/perm)")
    print(f"  kernel  {'float32':14s} workspace {k['float32_s'] * 1e3:8.1f} ms"
          f"   further {k['float32_speedup_vs_float64']:5.2f}x over float64")
    print(f"written to {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
