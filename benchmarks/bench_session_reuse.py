"""Measured benchmark: cold one-shot pmaxT vs warm session dispatch.

The tentpole claim of the session layer is that a long-lived
:class:`~repro.mpi.session.WorkerPoolSession` removes the per-call world
cost a one-shot ``pmaxT(backend=..., ranks=...)`` launch pays every time:
``ranks`` process spawns, queue construction, teardown joins, and a cold
:class:`~repro.core.kernel.KernelWorkspace` on every rank.  This benchmark
times the same pmaxT problem both ways — cold (a fresh world per call) and
warm (one session, repeated calls) — and writes the comparison to
``BENCH_session.json``.

Run standalone (writes the JSON next to the repository root)::

    PYTHONPATH=src python benchmarks/bench_session_reuse.py
    PYTHONPATH=src python benchmarks/bench_session_reuse.py \\
        --genes 4000 --samples 200 --ranks 8 --b 5000

or through pytest (acceptance shape, asserts the warm win)::

    PYTHONPATH=src python -m pytest benchmarks/bench_session_reuse.py -q
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro import pmaxT
from repro.data import synthetic_expression, two_class_labels
from repro.mpi import open_session

# The acceptance shape: 2000x100, 4 ranks.  B is kept moderate so the
# per-call world cost (what the session removes) is a visible fraction of
# the total; heavier B only shrinks the *relative* gap, never the absolute
# per-call saving.
DEFAULT_GENES = 2_000
DEFAULT_SAMPLES = 100
DEFAULT_RANKS = 4
DEFAULT_B = 1_000
DEFAULT_REPEATS = 3
DEFAULT_BACKEND = "shm"
RESULT_FILE = "BENCH_session.json"


def measure(
    n_genes=DEFAULT_GENES,
    n_samples=DEFAULT_SAMPLES,
    ranks=DEFAULT_RANKS,
    B=DEFAULT_B,
    repeats=DEFAULT_REPEATS,
    backend=DEFAULT_BACKEND,
    seed=5,
) -> dict:
    """Time cold (fresh world per call) vs warm (session) pmaxT calls."""
    X, _ = synthetic_expression(
        n_genes, n_samples, n_class1=n_samples // 2, de_fraction=0.1, seed=seed
    )
    labels = two_class_labels(n_samples // 2, n_samples - n_samples // 2)
    kwargs = dict(test="t", B=B, seed=29)

    # Cold: every call stands a world up and tears it down (the
    # pre-session path, bit-identical results).
    cold_times = []
    cold = None
    for _ in range(repeats):
        start = time.perf_counter()
        cold = pmaxT(X, labels, backend=backend, ranks=ranks, **kwargs)
        cold_times.append(time.perf_counter() - start)

    # Warm: one resident pool serves every call.  The first (untimed)
    # call pays the spawn; the timed calls dispatch over warm workers and
    # resident kernel workspaces.
    warm_times = []
    with open_session(backend, ranks) as session:
        warm = pmaxT(X, labels, session=session, **kwargs)  # spawn + warm-up
        for _ in range(repeats):
            start = time.perf_counter()
            warm = pmaxT(X, labels, session=session, **kwargs)
            warm_times.append(time.perf_counter() - start)
        spawns = session.spawns
        resident_workers = len(session.worker_pids())

    np.testing.assert_array_equal(cold.adjp, warm.adjp)  # same answer

    cold_best, warm_best = min(cold_times), min(warm_times)
    return {
        "benchmark": "session_reuse",
        "matrix": [n_genes, n_samples],
        "B": B,
        "ranks": ranks,
        "backend": backend,
        "repeats": repeats,
        "cold_call_s": cold_best,
        "warm_call_s": warm_best,
        "warm_speedup": cold_best / warm_best,
        "saved_per_call_s": cold_best - warm_best,
        "pool_spawns": spawns,
        "resident_workers": resident_workers,
    }


def test_warm_call_beats_cold_at_acceptance_shape():
    """ISSUE acceptance: warm < cold at 2000x100, 4 ranks."""
    result = measure(n_genes=2_000, n_samples=100, ranks=4, B=600, repeats=3)
    assert result["pool_spawns"] == 1
    assert result["warm_speedup"] > 1.0, (
        f"warm session call ({result['warm_call_s']:.4f}s) should beat the "
        f"cold one-shot call ({result['cold_call_s']:.4f}s)"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Time cold one-shot vs warm session pmaxT calls."
    )
    parser.add_argument("--genes", type=int, default=DEFAULT_GENES)
    parser.add_argument("--samples", type=int, default=DEFAULT_SAMPLES)
    parser.add_argument("--ranks", type=int, default=DEFAULT_RANKS)
    parser.add_argument("--b", type=int, default=DEFAULT_B, dest="B")
    parser.add_argument("--repeats", type=int, default=DEFAULT_REPEATS)
    parser.add_argument("--backend", default=DEFAULT_BACKEND)
    parser.add_argument(
        "--out",
        default=None,
        help=f"output JSON path (default: {RESULT_FILE} in the repository root)",
    )
    args = parser.parse_args(argv)

    result = measure(
        args.genes, args.samples, args.ranks, args.B, args.repeats, args.backend
    )

    out = (
        Path(args.out)
        if args.out
        else Path(__file__).resolve().parent.parent / RESULT_FILE
    )
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(result, indent=2) + "\n")

    print(
        f"pmaxT {result['matrix'][0]}x{result['matrix'][1]}, "
        f"B={result['B']}, {result['ranks']} ranks on "
        f"'{result['backend']}', best of {result['repeats']}"
    )
    print(
        f"  cold (spawn per call)  {result['cold_call_s'] * 1e3:8.1f} ms\n"
        f"  warm (resident pool)   {result['warm_call_s'] * 1e3:8.1f} ms\n"
        f"  speedup {result['warm_speedup']:.2f}x  "
        f"(saves {result['saved_per_call_s'] * 1e3:.1f} ms per call)"
    )
    print(f"written to {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
