"""Ablations: sampling/storage mode and checkpointing overhead.

* fixed-seed on-the-fly vs sequential-stream + stored permutations —
  the ``fixed.seed.sampling`` trade the paper inherits from multtest
  (memory for regeneration time);
* checkpointing on vs off — the cost of the fault-tolerance extension
  (future-work item 1).
"""

import numpy as np
import pytest

from repro import mt_maxT, pmaxT
from repro.data import synthetic_expression, two_class_labels


@pytest.fixture(scope="module")
def dataset():
    X, _ = synthetic_expression(400, 24, n_class1=12, seed=10)
    return X, two_class_labels(12, 12)


@pytest.mark.parametrize("fss", ["y", "n"])
def test_sampling_mode(benchmark, dataset, fss):
    X, labels = dataset
    result = benchmark(mt_maxT, X, labels, B=500, seed=11,
                       fixed_seed_sampling=fss)
    assert result.nperm == 500


def test_complete_enumeration(benchmark):
    """Unranking-driven complete enumeration (C(12,6) = 924 permutations)."""
    X, _ = synthetic_expression(200, 12, n_class1=6, seed=12)
    labels = two_class_labels(6, 6)
    result = benchmark(mt_maxT, X, labels, B=0)
    assert result.complete and result.nperm == 924


def test_checkpointing_off(benchmark, dataset):
    X, labels = dataset
    result = benchmark(pmaxT, X, labels, B=400, seed=13)
    assert result.nperm == 400


def test_checkpointing_on(benchmark, dataset, tmp_path_factory):
    X, labels = dataset

    def run():
        ckpt = tmp_path_factory.mktemp("ckpt")
        return pmaxT(X, labels, B=400, seed=13, checkpoint_dir=str(ckpt),
                     checkpoint_interval=100)

    result = benchmark(run)
    # checkpointing must not change the answer
    plain = pmaxT(X, labels, B=400, seed=13)
    np.testing.assert_array_equal(result.rawp, plain.rawp)
