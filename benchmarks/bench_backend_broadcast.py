"""Measured benchmark: pickled vs shared-memory array collectives.

The tentpole claim of the execution-backend layer is that the ``shm``
backend removes the dominant non-kernel cost of a process-world pmaxT run —
the "create data" broadcast of the expression matrix (paper Tables I–V) —
by replacing per-worker pickle-pipe-unpickle round trips with a single
copy into a ``multiprocessing.shared_memory`` segment that every rank maps
zero-copy.  This benchmark times exactly that collective, plus the closing
count reduction, on both process backends and writes the comparison to
``BENCH_backend.json`` so the performance trajectory captures the gap.

Run standalone (writes the JSON next to the repository root)::

    PYTHONPATH=src python benchmarks/bench_backend_broadcast.py
    PYTHONPATH=src python benchmarks/bench_backend_broadcast.py \
        --genes 10000 --samples 200 --ranks 8 --repeats 5

or through pytest (small workload, asserts the shm win)::

    PYTHONPATH=src python -m pytest benchmarks/bench_backend_broadcast.py -q
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.mpi import run_backend

# ≥ 5000x100 float64 per the acceptance criterion; the defaults are larger
# so the gap is unmistakable on a noisy machine.  The pickled path pays per
# *worker* (one pipe round trip each) while the shm path is one memcpy
# total, so more ranks widen the gap.
DEFAULT_GENES = 8_000
DEFAULT_SAMPLES = 200
DEFAULT_RANKS = 8
DEFAULT_REPEATS = 3
RESULT_FILE = "BENCH_backend.json"


def _bcast_job(X, repeats, pickled):
    """SPMD job: master-timed broadcast of ``X``, best of ``repeats``."""

    def job(comm):
        best = float("inf")
        for _ in range(repeats):
            comm.barrier()
            start = time.perf_counter()
            if pickled:
                data = comm.bcast(X if comm.is_master else None)
            else:
                data = comm.bcast_array(X if comm.is_master else None)
            comm.barrier()
            elapsed = time.perf_counter() - start
            best = min(best, elapsed)
            assert data.shape == X.shape
        return best if comm.is_master else None

    return job


def _reduce_job(m, repeats, pickled):
    """SPMD job: master-timed reduction of a length-``m`` count vector."""

    def job(comm):
        counts = np.full(m, comm.rank + 1, dtype=np.int64)
        best = float("inf")
        for _ in range(repeats):
            comm.barrier()
            start = time.perf_counter()
            total = (comm.reduce(counts) if pickled
                     else comm.reduce_array(counts))
            comm.barrier()
            elapsed = time.perf_counter() - start
            best = min(best, elapsed)
            if comm.is_master:
                assert int(total[0]) == comm.size * (comm.size + 1) // 2
        return best if comm.is_master else None

    return job


def measure(n_genes=DEFAULT_GENES, n_samples=DEFAULT_SAMPLES,
            ranks=DEFAULT_RANKS, repeats=DEFAULT_REPEATS, seed=3) -> dict:
    """Time the data broadcast and count reduction on both process worlds."""
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n_genes, n_samples))

    timings = {}
    # The "processes" rows use the generic object path (comm.bcast/reduce),
    # i.e. the pre-refactor wire: a pickled matrix through every rank's
    # queue.  The "shm" rows use the array collectives over shared memory.
    # The reduction vector matches the broadcast payload in bytes so both
    # collectives are measured above the shm threshold (pmaxT's own count
    # vectors are usually small and deliberately ride the queue wire).
    reduce_len = n_genes * n_samples
    for backend, pickled in (("processes", True), ("shm", False)):
        bcast = run_backend(backend, _bcast_job(X, repeats, pickled),
                            ranks)[0]
        reduce_ = run_backend(backend, _reduce_job(reduce_len, repeats,
                                                   pickled), ranks)[0]
        timings[backend] = {"bcast_s": bcast, "reduce_s": reduce_}

    return {
        "benchmark": "backend_broadcast",
        "matrix": [n_genes, n_samples],
        "dtype": "float64",
        "payload_mb": X.nbytes / 1e6,
        "reduce_len": reduce_len,
        "ranks": ranks,
        "repeats": repeats,
        "pickled_bcast_s": timings["processes"]["bcast_s"],
        "shm_bcast_s": timings["shm"]["bcast_s"],
        "bcast_speedup": (timings["processes"]["bcast_s"]
                          / timings["shm"]["bcast_s"]),
        "pickled_reduce_s": timings["processes"]["reduce_s"],
        "shm_reduce_s": timings["shm"]["reduce_s"],
        "reduce_speedup": (timings["processes"]["reduce_s"]
                           / timings["shm"]["reduce_s"]),
    }


def test_shm_broadcast_beats_pickled():
    """Acceptance: zero-copy broadcast wins on a ≥5000x100 float64 matrix."""
    result = measure(n_genes=5_000, n_samples=100, ranks=8, repeats=3)
    assert result["bcast_speedup"] > 1.0, (
        f"shm broadcast ({result['shm_bcast_s']:.4f}s) should beat the "
        f"pickled one ({result['pickled_bcast_s']:.4f}s)")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Time pickled vs shared-memory array collectives.")
    parser.add_argument("--genes", type=int, default=DEFAULT_GENES)
    parser.add_argument("--samples", type=int, default=DEFAULT_SAMPLES)
    parser.add_argument("--ranks", type=int, default=DEFAULT_RANKS)
    parser.add_argument("--repeats", type=int, default=DEFAULT_REPEATS)
    parser.add_argument("--out", default=None,
                        help=f"output JSON path (default: {RESULT_FILE} "
                        "in the repository root)")
    args = parser.parse_args(argv)

    result = measure(args.genes, args.samples, args.ranks, args.repeats)

    out = Path(args.out) if args.out else \
        Path(__file__).resolve().parent.parent / RESULT_FILE
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(result, indent=2) + "\n")

    print(f"matrix {result['matrix'][0]}x{result['matrix'][1]} float64 "
          f"({result['payload_mb']:.1f} MB), {result['ranks']} ranks, "
          f"best of {result['repeats']}")
    print(f"  broadcast   pickled {result['pickled_bcast_s'] * 1e3:8.2f} ms"
          f"   shm {result['shm_bcast_s'] * 1e3:8.2f} ms"
          f"   speedup {result['bcast_speedup']:.1f}x")
    print(f"  reduction   pickled {result['pickled_reduce_s'] * 1e3:8.2f} ms"
          f"   shm {result['shm_reduce_s'] * 1e3:8.2f} ms"
          f"   speedup {result['reduce_speedup']:.1f}x")
    print(f"written to {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
