"""Measured benchmark: the compute-engine hot path, engine vs reference.

Two measurements per available engine, written to ``BENCH_accel.json``:

1. **Engine-batched keystream generation** — ``take_batch`` with an engine
   attached (batched Philox raw keys + one device argsort per super-batch)
   against the engine-less batched path, per keystream family.  The stream
   is asserted bit-identical before either timing means anything: the keys
   are generated on the host and are unique with overwhelming probability,
   so any correct sort yields the same permutation.
2. **End-to-end ``run_kernel``** — the engine-routed kernel (super-batch
   encoding prefill + engine-namespace scoring GEMMs) against the plain
   workspace kernel on the same problem.  The numpy engine performs the
   reference arithmetic, so its counts are asserted int64-exact; device
   engines are bit-identical on the stream and tie-tolerance-equal on
   counts (only the numpy rows gate CI).

The ``speedup`` leaves feed ``check_bench_regression.py``: both ratios are
engine-vs-reference on the *same host and scale*, so they are
host-independent claims — the committed record defends "the engine path
does not collapse", not an absolute throughput.  Engines missing on the
host (torch, cupy) simply do not appear in the JSON; the gate skips keys
present on one side only, so a torch CI leg can write richer smoke records
against the same committed file.

Run standalone (writes the JSON next to the repository root)::

    PYTHONPATH=src python benchmarks/bench_accel.py
    PYTHONPATH=src python benchmarks/bench_accel.py \
        --genes 1000 --samples 60 --b-perm 4000 --b-kernel 400 --repeats 1

or through pytest (small workload, asserts parity and the win)::

    PYTHONPATH=src python -m pytest benchmarks/bench_accel.py -q
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.accel import resolve_engine
from repro.core.kernel import run_kernel
from repro.errors import EngineUnavailableError
from repro.permute import RandomBlockShuffle, RandomLabelShuffle, RandomSigns

DEFAULT_GENES = 5_000
DEFAULT_SAMPLES = 100
DEFAULT_B_PERM = 10_000
DEFAULT_B_KERNEL = 2_000
DEFAULT_REPEATS = 3
RESULT_FILE = "BENCH_accel.json"


def _best(fn, repeats):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def available_engines() -> list[str]:
    """Engine names importable on this host, reference engine first."""
    names = ["numpy"]
    for name in ("torch", "cupy"):
        try:
            resolve_engine(name)
        except EngineUnavailableError:
            continue
        names.append(name)
    return names


# ---------------------------------------------------------------------------
# 1. Engine-batched keystream generation
# ---------------------------------------------------------------------------

def _families(n_samples: int, nperm: int) -> dict:
    from repro.data import block_labels, two_class_labels

    labels = two_class_labels(n_samples // 2, n_samples - n_samples // 2)
    blocks = block_labels(max(2, n_samples // 4), 4)
    npairs = n_samples // 2
    return {
        "label_shuffle": lambda: RandomLabelShuffle(labels, nperm),
        "signs": lambda: RandomSigns(npairs, nperm),
        "block_shuffle": lambda: RandomBlockShuffle(blocks, 4, nperm),
    }


def measure_permgen(ops, n_samples, b_perm, repeats) -> dict:
    out = {}
    for name, make in _families(n_samples, b_perm + 1).items():
        # Bit-identity guard: the engine-sorted stream must equal the
        # reference stream before its time is meaningful.
        head = min(b_perm, 64)
        plain = make()
        plain.skip(1)
        reference = plain.take_batch(head)
        accel = make()
        assert accel.attach_engine(ops), name
        accel.skip(1)
        assert np.array_equal(accel.take_batch(head), reference), name

        # Reuse generators and the output buffer across repeats, exactly
        # as run_kernel does (resident generator, workspace.enc buffer).
        buf = np.empty((b_perm, plain.width), dtype=np.int64)

        def plain_batch():
            plain.reset()
            plain.skip(1)
            return plain.take_batch(b_perm, out=buf)

        def engine_batch():
            accel.reset()
            accel.skip(1)
            return accel.take_batch(b_perm, out=buf)

        plain_s = _best(plain_batch, repeats)
        engine_s = _best(engine_batch, repeats)
        out[name] = {
            "plain_s": plain_s,
            "engine_s": engine_s,
            "speedup": plain_s / engine_s,
            "perms_per_s": b_perm / engine_s,
        }
    return out


# ---------------------------------------------------------------------------
# 2. The engine-routed kernel
# ---------------------------------------------------------------------------

def _kernel_problem(n_genes, n_samples, b_kernel, seed=1):
    from repro.core.kernel import compute_observed
    from repro.core.options import (
        build_generator,
        build_statistic,
        validate_options,
    )
    from repro.data import two_class_labels

    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n_genes, n_samples))
    labels = two_class_labels(n_samples // 2, n_samples - n_samples // 2)
    options = validate_options(labels, test="t", B=b_kernel)
    stat = build_statistic(options, X, labels)
    generator = build_generator(options, labels)
    observed = compute_observed(stat, "abs")
    return stat, generator, observed


def measure_kernel(ops, n_genes, n_samples, b_kernel, repeats,
                   exact: bool) -> dict:
    stat, generator, observed = _kernel_problem(n_genes, n_samples, b_kernel)

    reference = run_kernel(stat, generator, observed, "abs", 0, b_kernel)
    routed = run_kernel(stat, generator, observed, "abs", 0, b_kernel,
                        engine=ops)
    if exact:  # the numpy engine is the reference arithmetic
        assert np.array_equal(reference.raw, routed.raw)
        assert np.array_equal(reference.adjusted, routed.adjusted)
    assert reference.nperm == routed.nperm

    plain_s = _best(
        lambda: run_kernel(stat, generator, observed, "abs", 0, b_kernel),
        repeats)
    engine_s = _best(
        lambda: run_kernel(stat, generator, observed, "abs", 0, b_kernel,
                           engine=ops),
        repeats)
    return {
        "plain_s": plain_s,
        "engine_s": engine_s,
        "speedup": plain_s / engine_s,
        "us_per_perm": engine_s / b_kernel * 1e6,
    }


def measure(n_genes=DEFAULT_GENES, n_samples=DEFAULT_SAMPLES,
            b_perm=DEFAULT_B_PERM, b_kernel=DEFAULT_B_KERNEL,
            repeats=DEFAULT_REPEATS) -> dict:
    engines = {}
    for name in available_engines():
        ops = resolve_engine(name)
        engines[name] = {
            "permgen": measure_permgen(ops, n_samples, b_perm, repeats),
            "kernel": measure_kernel(ops, n_genes, n_samples, b_kernel,
                                     repeats, exact=(name == "numpy")),
        }
    ref = engines["numpy"]
    return {
        "benchmark": "accel_engines",
        "matrix": [n_genes, n_samples],
        "b_perm": b_perm,
        "b_kernel": b_kernel,
        "repeats": repeats,
        "engines": engines,
        "engine_permgen_speedup": ref["permgen"]["label_shuffle"]["speedup"],
        "engine_kernel_speedup": ref["kernel"]["speedup"],
    }


def test_numpy_engine_parity_and_win():
    """Smoke acceptance at reduced scale: exact parity, generation wins."""
    result = measure(n_genes=800, n_samples=64, b_perm=4_000, b_kernel=400,
                     repeats=2)
    ref = result["engines"]["numpy"]
    # The argsort-batched keystream must beat the reference batched path.
    assert result["engine_permgen_speedup"] > 1.2, ref["permgen"]
    # The routed kernel must not collapse (the GEMMs already dominate).
    assert result["engine_kernel_speedup"] > 0.7, ref["kernel"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Time the compute-engine hot path, engine vs reference.")
    parser.add_argument("--genes", type=int, default=DEFAULT_GENES)
    parser.add_argument("--samples", type=int, default=DEFAULT_SAMPLES)
    parser.add_argument("--b-perm", type=int, default=DEFAULT_B_PERM)
    parser.add_argument("--b-kernel", type=int, default=DEFAULT_B_KERNEL)
    parser.add_argument("--repeats", type=int, default=DEFAULT_REPEATS)
    parser.add_argument("--out", default=None,
                        help=f"output JSON path (default: {RESULT_FILE} "
                        "in the repository root)")
    args = parser.parse_args(argv)

    result = measure(args.genes, args.samples, args.b_perm, args.b_kernel,
                     args.repeats)

    out = Path(args.out) if args.out else \
        Path(__file__).resolve().parent.parent / RESULT_FILE
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(result, indent=2) + "\n")

    print(f"matrix {args.genes}x{args.samples}, B_perm={args.b_perm}, "
          f"B_kernel={args.b_kernel}, best of {args.repeats}")
    for name, rows in result["engines"].items():
        for family, row in rows["permgen"].items():
            print(f"  {name:6s} permgen {family:14s}"
                  f" plain {row['plain_s'] * 1e3:8.1f} ms"
                  f"   engine {row['engine_s'] * 1e3:8.1f} ms"
                  f"   speedup {row['speedup']:5.2f}x"
                  f"   ({row['perms_per_s'] / 1e3:.0f}k perms/s)")
        k = rows["kernel"]
        print(f"  {name:6s} kernel {'t':15s}"
              f" plain {k['plain_s'] * 1e3:8.1f} ms"
              f"   engine {k['engine_s'] * 1e3:8.1f} ms"
              f"   speedup {k['speedup']:5.2f}x"
              f"   ({k['us_per_perm']:.0f} us/perm)")
    print(f"written to {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
