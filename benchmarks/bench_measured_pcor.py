"""Measured benchmarks: SPRINT's pcor (serial and data-divided parallel).

The complement to the pmaxT benches: the correlation function divides the
*data* rather than the permutation count, so its cost profile (one m x m
GEMM-bound output) stresses the substrate differently.
"""

import numpy as np
import pytest

from repro.corr import cor, pcor
from repro.data import inject_missing, synthetic_expression
from repro.mpi import run_spmd


@pytest.fixture(scope="module")
def X():
    data, _ = synthetic_expression(800, 60, n_class1=30, seed=15)
    return data


def test_cor_serial(benchmark, X):
    R = benchmark(cor, X)
    assert R.shape == (800, 800)


def test_cor_pairwise_missing(benchmark, X):
    Xm = inject_missing(X, 0.05, seed=16)
    R = benchmark(cor, Xm, use="pairwise")
    assert R.shape == (800, 800)


@pytest.mark.parametrize("nprocs", [1, 2, 4])
def test_pcor_parallel(benchmark, X, nprocs):
    def run():
        return run_spmd(lambda comm: pcor(X, comm=comm), nprocs)[0]

    R = benchmark(run)
    np.testing.assert_allclose(R, cor(X), rtol=1e-10, atol=1e-12)
