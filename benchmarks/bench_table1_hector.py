"""Regenerate paper Table I — pmaxT profile on HECToR (Cray XT4), P = 1..512.

Workload: B = 150 000 permutations on the 6 102 x 76 expression matrix.
The calibrated hector platform model executes the real partition plan per
process count and prices the five pmaxT sections; the shape assertions
guard the regeneration, and pytest-benchmark times it.

Print the table with: `python -m repro.bench.tables --table 1 --paper`.
"""

from bench_util import assert_profile_shape, regenerate_profile_table


def test_table1_hector(benchmark):
    runs = benchmark(regenerate_profile_table, "hector")
    assert_profile_shape("hector", runs)
