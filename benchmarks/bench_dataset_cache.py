"""Measured benchmark: dataset registry + result cache vs plain warm calls.

The tentpole claims of the registry/cache layer, timed on one problem:

* **published warm call** — the matrix is published once into shared
  memory; warm calls broadcast only a segment descriptor instead of the
  matrix (the "create data" column of the paper's tables drops out);
* **cache hit** — an identical repeated analysis is answered from the
  content-addressed result cache without dispatching a job at all;
* **incremental B** — extending a cached ``B`` to ``2B`` computes only
  the new half, bit-identical to a cold run at ``2B``.

All paths are verified bit-identical before any number is reported.
Writes ``BENCH_cache.json``.  Run standalone::

    PYTHONPATH=src python benchmarks/bench_dataset_cache.py
    PYTHONPATH=src python benchmarks/bench_dataset_cache.py \\
        --genes 4000 --samples 200 --ranks 8 --b 5000

or through pytest (acceptance shape, asserts the wins)::

    PYTHONPATH=src python -m pytest benchmarks/bench_dataset_cache.py -q
"""

from __future__ import annotations

import argparse
import json
import tempfile
import time
from pathlib import Path

import numpy as np

from repro import pmaxT
from repro.core.checkpoint import ResultCache
from repro.data import synthetic_expression, two_class_labels
from repro.mpi import open_session

# The acceptance shape, matching bench_session_reuse.py so the two JSONs
# compose: 2000x100, 4 shm ranks, B=1000.
DEFAULT_GENES = 2_000
DEFAULT_SAMPLES = 100
DEFAULT_RANKS = 4
DEFAULT_B = 1_000
DEFAULT_REPEATS = 3
DEFAULT_BACKEND = "shm"
RESULT_FILE = "BENCH_cache.json"


def measure(
    n_genes=DEFAULT_GENES,
    n_samples=DEFAULT_SAMPLES,
    ranks=DEFAULT_RANKS,
    B=DEFAULT_B,
    repeats=DEFAULT_REPEATS,
    backend=DEFAULT_BACKEND,
    seed=5,
) -> dict:
    """Time warm matrix calls vs published / cache-hit / incremental-B."""
    X, _ = synthetic_expression(
        n_genes, n_samples, n_class1=n_samples // 2, de_fraction=0.1, seed=seed
    )
    labels = two_class_labels(n_samples // 2, n_samples - n_samples // 2)
    kwargs = dict(test="t", seed=29)

    cold = pmaxT(X, labels, B=B, **kwargs)
    cold_2b = pmaxT(X, labels, B=2 * B, **kwargs)

    with open_session(backend, ranks) as session:
        pmaxT(X, labels, B=B, session=session, **kwargs)  # spawn + warm-up

        # Baseline: warm session call shipping the matrix every time
        # (the PR 3 state of the art).
        warm_times = []
        for _ in range(repeats):
            start = time.perf_counter()
            warm = pmaxT(X, labels, B=B, session=session, **kwargs)
            warm_times.append(time.perf_counter() - start)

        # Published: same warm pool, matrix resolved from the registry —
        # only the segment descriptor and the labels cross the wire.
        handle = session.publish(X, labels=labels)
        pmaxT(handle, B=B, session=session, **kwargs)  # map segments once
        published_times = []
        for _ in range(repeats):
            start = time.perf_counter()
            published = pmaxT(handle, B=B, session=session, **kwargs)
            published_times.append(time.perf_counter() - start)

        with tempfile.TemporaryDirectory() as cache_dir:
            cache = ResultCache(cache_dir)
            pmaxT(handle, B=B, session=session, cache=cache, **kwargs)  # seed

            # Cache hit: the identical analysis answered from disk.
            hit_times = []
            for _ in range(repeats):
                start = time.perf_counter()
                hit = pmaxT(handle, B=B, session=session, cache=cache,
                            **kwargs)
                hit_times.append(time.perf_counter() - start)

            # Incremental B -> 2B: reuse the cached B counts, compute only
            # [B, 2B).  Each repeat restores the B-only cache state first
            # (removing the 2B entry) so every timed call extends.
            extend_times = []
            for _ in range(repeats):
                for path in Path(cache_dir).glob(f"maxt-*-B{2 * B}.npz"):
                    path.unlink()
                start = time.perf_counter()
                extended = pmaxT(handle, B=2 * B, session=session,
                                 cache=cache, **kwargs)
                extend_times.append(time.perf_counter() - start)

            # Cold 2B on the same warm pool: what the extension replaces.
            cold_2b_times = []
            for _ in range(repeats):
                start = time.perf_counter()
                warm_2b = pmaxT(handle, B=2 * B, session=session, **kwargs)
                cold_2b_times.append(time.perf_counter() - start)

            assert cache.hits == repeats
            assert cache.extensions == repeats

    # Every path must agree bit-for-bit before any timing is believed.
    for other in (warm, published, hit):
        np.testing.assert_array_equal(cold.adjp, other.adjp)
    np.testing.assert_array_equal(cold_2b.adjp, extended.adjp)
    np.testing.assert_array_equal(cold_2b.adjp, warm_2b.adjp)

    warm_best = min(warm_times)
    published_best = min(published_times)
    hit_best = min(hit_times)
    extend_best = min(extend_times)
    cold_2b_best = min(cold_2b_times)
    return {
        "benchmark": "dataset_cache",
        "matrix": [n_genes, n_samples],
        "B": B,
        "ranks": ranks,
        "backend": backend,
        "repeats": repeats,
        "warm_matrix_call_s": warm_best,
        "published_call_s": published_best,
        "cache_hit_s": hit_best,
        "incremental_2b_s": extend_best,
        "cold_2b_call_s": cold_2b_best,
        "published_speedup": warm_best / published_best,
        "cache_hit_speedup": warm_best / hit_best,
        "incremental_speedup": cold_2b_best / extend_best,
        "incremental_fraction_of_cold": extend_best / cold_2b_best,
    }


def test_cache_paths_beat_warm_at_acceptance_shape():
    """ISSUE acceptance: published no slower, hit >= 2x, extension <= ~55%."""
    result = measure(n_genes=2_000, n_samples=100, ranks=4, B=1_000,
                     repeats=3)
    assert result["published_speedup"] > 0.9, (
        f"published warm call ({result['published_call_s']:.4f}s) should "
        f"not lose to the matrix-shipping call "
        f"({result['warm_matrix_call_s']:.4f}s)")
    assert result["cache_hit_speedup"] > 2.0, (
        f"cache hit ({result['cache_hit_s']:.4f}s) should be >= 2x faster "
        f"than a warm compute call ({result['warm_matrix_call_s']:.4f}s)")
    assert result["incremental_fraction_of_cold"] < 0.75, (
        f"incremental B->2B ({result['incremental_2b_s']:.4f}s) should "
        f"cost well under a cold 2B run ({result['cold_2b_call_s']:.4f}s)")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Time published / cache-hit / incremental-B pmaxT calls."
    )
    parser.add_argument("--genes", type=int, default=DEFAULT_GENES)
    parser.add_argument("--samples", type=int, default=DEFAULT_SAMPLES)
    parser.add_argument("--ranks", type=int, default=DEFAULT_RANKS)
    parser.add_argument("--b", type=int, default=DEFAULT_B, dest="B")
    parser.add_argument("--repeats", type=int, default=DEFAULT_REPEATS)
    parser.add_argument("--backend", default=DEFAULT_BACKEND)
    parser.add_argument(
        "--out",
        default=None,
        help=f"output JSON path (default: {RESULT_FILE} in the repository root)",
    )
    args = parser.parse_args(argv)

    result = measure(
        args.genes, args.samples, args.ranks, args.B, args.repeats, args.backend
    )

    out = (
        Path(args.out)
        if args.out
        else Path(__file__).resolve().parent.parent / RESULT_FILE
    )
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(result, indent=2) + "\n")

    print(
        f"pmaxT {result['matrix'][0]}x{result['matrix'][1]}, "
        f"B={result['B']}, {result['ranks']} ranks on "
        f"'{result['backend']}', best of {result['repeats']}"
    )
    print(
        f"  warm call, matrix shipped   {result['warm_matrix_call_s'] * 1e3:8.1f} ms\n"
        f"  warm call, published        {result['published_call_s'] * 1e3:8.1f} ms "
        f"({result['published_speedup']:.2f}x)\n"
        f"  cache hit                   {result['cache_hit_s'] * 1e3:8.1f} ms "
        f"({result['cache_hit_speedup']:.2f}x)\n"
        f"  incremental B->2B           {result['incremental_2b_s'] * 1e3:8.1f} ms "
        f"({result['incremental_fraction_of_cold'] * 100:.0f}% of the "
        f"{result['cold_2b_call_s'] * 1e3:.1f} ms cold 2B call)"
    )
    print(f"written to {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
