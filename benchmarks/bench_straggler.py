"""Measured benchmark: static partition vs work-stealing under a straggler.

The static Figure-2 plan hands every rank one contiguous permutation
chunk, so the job's wall-clock is the *slowest* rank's chunk time — one
throttled rank stalls the whole world.  The block-granular steal schedule
(``schedule="steal"``) lets finished ranks take blocks off the straggler's
share, so the wall-clock tracks the world's *aggregate* throughput
instead.  This benchmark times the same pmaxT problem both ways over one
warm session, with one rank throttled 4x via the scheduler's delay hook
(``REPRO_STEAL_TEST_DELAY`` — a per-permutation sleep, so the skew is
reproducible on any host), asserts the two answers are bit-identical, and
writes the comparison to ``BENCH_steal.json``.

With three full-speed ranks and one at quarter speed, the static plan's
wall is the straggler's chunk (``B/4`` permutations at 4x cost == the
full-``B`` serial delay) while stealing approaches the aggregate rate of
3.25 rank-equivalents — an ideal ~3.2x; the gate requires >= 1.5x so
block granularity and protocol overhead have comfortable room.

Run standalone (writes the JSON next to the repository root)::

    PYTHONPATH=src python benchmarks/bench_straggler.py
    PYTHONPATH=src python benchmarks/bench_straggler.py \\
        --b 4000 --ranks 4 --delay 0.0005

or through pytest (acceptance shape, asserts the steal win)::

    PYTHONPATH=src python -m pytest benchmarks/bench_straggler.py -q
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

import numpy as np

from repro import pmaxT
from repro.data import synthetic_expression, two_class_labels
from repro.mpi import open_session

# Acceptance shape: a small matrix (the skew is injected, not compute
# -bound), 4 ranks, one of them 4x slower.  The injected per-permutation
# delay dominates the kernel by design, so the measured ratio isolates
# the *schedule* — the thing this benchmark exists to defend — from the
# host's BLAS throughput.
DEFAULT_GENES = 200
DEFAULT_SAMPLES = 40
DEFAULT_RANKS = 4
DEFAULT_B = 2_000
DEFAULT_REPEATS = 3
DEFAULT_BACKEND = "shm"
DEFAULT_DELAY = 0.0005  # seconds per permutation on the fast ranks
DEFAULT_STRAGGLER_FACTOR = 4.0
DEFAULT_STEAL_BLOCK = 100
RESULT_FILE = "BENCH_steal.json"

_DELAY_ENV_VAR = "REPRO_STEAL_TEST_DELAY"


def measure(
    n_genes=DEFAULT_GENES,
    n_samples=DEFAULT_SAMPLES,
    ranks=DEFAULT_RANKS,
    B=DEFAULT_B,
    repeats=DEFAULT_REPEATS,
    backend=DEFAULT_BACKEND,
    delay=DEFAULT_DELAY,
    straggler_factor=DEFAULT_STRAGGLER_FACTOR,
    steal_block=DEFAULT_STEAL_BLOCK,
    seed=5,
) -> dict:
    """Time static vs steal pmaxT with rank 1 throttled; assert same bits."""
    X, _ = synthetic_expression(
        n_genes, n_samples, n_class1=n_samples // 2, de_fraction=0.1,
        seed=seed,
    )
    labels = two_class_labels(n_samples // 2, n_samples - n_samples // 2)
    kwargs = dict(test="t", B=B, seed=29)

    previous = os.environ.get(_DELAY_ENV_VAR)
    os.environ[_DELAY_ENV_VAR] = (
        f"1:{delay * straggler_factor:.6f},*:{delay:.6f}")
    try:
        static_times, steal_times = [], []
        with open_session(backend, ranks) as session:
            # Untimed warm-up: pays the pool spawn and the resident
            # kernel workspaces, so the timed calls isolate the schedule.
            pmaxT(X, labels, session=session, schedule="static", **kwargs)
            for _ in range(repeats):
                start = time.perf_counter()
                static = pmaxT(X, labels, session=session,
                               schedule="static", **kwargs)
                static_times.append(time.perf_counter() - start)
            for _ in range(repeats):
                start = time.perf_counter()
                steal = pmaxT(X, labels, session=session, schedule="steal",
                              steal_block=steal_block, **kwargs)
                steal_times.append(time.perf_counter() - start)
            blocks_stolen = session.blocks_stolen
    finally:
        if previous is None:
            os.environ.pop(_DELAY_ENV_VAR, None)
        else:
            os.environ[_DELAY_ENV_VAR] = previous

    # The headline invariant: the schedule moves blocks between ranks,
    # never what is computed — the bits must match exactly.
    np.testing.assert_array_equal(static.adjp, steal.adjp)
    np.testing.assert_array_equal(static.rawp, steal.rawp)
    np.testing.assert_array_equal(static.teststat, steal.teststat)

    static_best, steal_best = min(static_times), min(steal_times)
    return {
        "benchmark": "straggler_steal",
        "matrix": [n_genes, n_samples],
        "B": B,
        "ranks": ranks,
        "backend": backend,
        "repeats": repeats,
        "delay_s_per_perm": delay,
        "straggler_factor": straggler_factor,
        "steal_block": steal_block,
        "static_s": static_best,
        "steal_s": steal_best,
        "steal_speedup": static_best / steal_best,
        "blocks_stolen": blocks_stolen,
    }


def test_steal_beats_static_under_straggler():
    """ISSUE acceptance: >= 1.5x at 4 ranks with one 4x-throttled rank."""
    result = measure()
    assert result["blocks_stolen"] > 0, "the steal schedule never engaged"
    assert result["steal_speedup"] >= 1.5, (
        f"steal ({result['steal_s']:.3f}s) should beat the static plan "
        f"({result['static_s']:.3f}s) by >= 1.5x under a 4x straggler, "
        f"got {result['steal_speedup']:.2f}x"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Time static vs steal pmaxT under an injected straggler."
    )
    parser.add_argument("--genes", type=int, default=DEFAULT_GENES)
    parser.add_argument("--samples", type=int, default=DEFAULT_SAMPLES)
    parser.add_argument("--ranks", type=int, default=DEFAULT_RANKS)
    parser.add_argument("--b", type=int, default=DEFAULT_B, dest="B")
    parser.add_argument("--repeats", type=int, default=DEFAULT_REPEATS)
    parser.add_argument("--backend", default=DEFAULT_BACKEND)
    parser.add_argument("--delay", type=float, default=DEFAULT_DELAY,
                        help="per-permutation delay on the fast ranks (s)")
    parser.add_argument("--straggler-factor", type=float,
                        default=DEFAULT_STRAGGLER_FACTOR)
    parser.add_argument("--steal-block", type=int,
                        default=DEFAULT_STEAL_BLOCK)
    parser.add_argument(
        "--out",
        default=None,
        help=f"output JSON path (default: {RESULT_FILE} in the repository root)",
    )
    args = parser.parse_args(argv)

    result = measure(
        args.genes, args.samples, args.ranks, args.B, args.repeats,
        args.backend, args.delay, args.straggler_factor, args.steal_block,
    )

    out = (
        Path(args.out)
        if args.out
        else Path(__file__).resolve().parent.parent / RESULT_FILE
    )
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(result, indent=2) + "\n")

    print(
        f"pmaxT {result['matrix'][0]}x{result['matrix'][1]}, "
        f"B={result['B']}, {result['ranks']} ranks on "
        f"'{result['backend']}', rank 1 throttled "
        f"{result['straggler_factor']:g}x, best of {result['repeats']}"
    )
    print(
        f"  static partition   {result['static_s'] * 1e3:8.1f} ms\n"
        f"  work stealing      {result['steal_s'] * 1e3:8.1f} ms\n"
        f"  speedup {result['steal_speedup']:.2f}x  "
        f"({result['blocks_stolen']} blocks stolen)"
    )
    print(f"written to {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
