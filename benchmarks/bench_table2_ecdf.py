"""Regenerate paper Table II — pmaxT profile on ECDF 'Eddie' cluster, P = 1..128.

Workload: B = 150 000 permutations on the 6 102 x 76 expression matrix.
The calibrated ecdf platform model executes the real partition plan per
process count and prices the five pmaxT sections; the shape assertions
guard the regeneration, and pytest-benchmark times it.

Print the table with: `python -m repro.bench.tables --table 2 --paper`.
"""

from bench_util import assert_profile_shape, regenerate_profile_table


def test_table2_ecdf(benchmark):
    runs = benchmark(regenerate_profile_table, "ecdf")
    assert_profile_shape("ecdf", runs)
