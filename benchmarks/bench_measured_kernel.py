"""Measured benchmarks: the real maxT kernel on this machine.

These time the actual Python/NumPy implementation (not the platform
simulator): end-to-end mt_maxT per statistic, and the kernel's permutation
throughput, which is the quantity the paper's "Main kernel" column tracks.
"""

import pytest

from repro.bench.runner import measured_workload, run_serial


@pytest.mark.parametrize("test", ["t", "t.equalvar", "wilcoxon", "f",
                                  "pairt", "blockf"])
def test_maxt_end_to_end(benchmark, test):
    work = measured_workload(test, n_genes=400, n_samples=24, B=300)
    result = benchmark(run_serial, work)
    assert result.nperm == 300
    assert result.m == 400


def test_maxt_paper_shape_scaled_down(benchmark):
    """The paper's matrix aspect (genes >> samples), laptop-scale."""
    work = measured_workload("t", n_genes=6102 // 4, n_samples=76, B=150)
    result = benchmark(run_serial, work)
    assert result.m == 1525


def test_maxt_large_b(benchmark):
    """Permutation-count dominated regime (the paper's bottleneck)."""
    work = measured_workload("t", n_genes=100, n_samples=20, B=4_000)
    result = benchmark(run_serial, work)
    assert result.nperm == 4_000


def test_maxt_with_missing_values(benchmark):
    """The masked-GEMM path must not collapse under NAs."""
    import numpy as np

    from repro import mt_maxT
    from repro.data import inject_missing, synthetic_expression, two_class_labels

    X, _ = synthetic_expression(400, 24, n_class1=12, seed=3)
    X = inject_missing(X, 0.05, seed=4)
    labels = two_class_labels(12, 12)
    result = benchmark(mt_maxT, X, labels, B=300)
    assert np.isfinite(result.teststat).sum() > 350
