"""CI smoke test: the service front-end, end to end, over real HTTP.

Starts ``repro-maxt serve`` as a subprocess (the way an operator would),
waits for ``/healthz``, submits a pmaxT analysis through
:class:`~repro.serve.client.ServiceClient`, polls it to completion and
asserts the wire result is **bit-identical** to a direct in-process
``pmaxT()`` run — the service tier must never change an answer.  Also
checks ``/statsz`` reports the configured pools and the completed job.

Exit status 0 = all checks passed, 1 = any failure (the CI service-smoke
job gates on it)::

    PYTHONPATH=src python benchmarks/service_smoke.py
    PYTHONPATH=src python benchmarks/service_smoke.py --pools 4 --b 2000
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

from repro import pmaxT
from repro.data import synthetic_expression, two_class_labels
from repro.serve import ServiceClient

DEFAULT_GENES = 400
DEFAULT_SAMPLES = 32
DEFAULT_B = 1_000
DEFAULT_POOLS = 2
DEFAULT_RANKS = 2
DEFAULT_BACKEND = "threads"

_LISTEN_RE = re.compile(r"listening on http://([\d.]+):(\d+)")


def _start_server(pools: int, ranks: int, backend: str) -> tuple:
    """Launch ``repro-maxt serve --port 0``; return (process, base_url)."""
    src = Path(__file__).resolve().parent.parent / "src"
    env = dict(os.environ)
    env["PYTHONPATH"] = f"{src}{os.pathsep}" + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
         "--pools", str(pools), "--ranks", str(ranks),
         "--backend", backend],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True,
    )
    # The serve banner names the bound address (port 0 picks a free one).
    line = proc.stdout.readline()
    match = _LISTEN_RE.search(line)
    if not match:
        proc.terminate()
        raise RuntimeError(f"no listen banner from the server: {line!r}")
    return proc, f"http://{match.group(1)}:{match.group(2)}"


def _wait_healthy(client: ServiceClient, deadline_s: float = 30.0) -> None:
    deadline = time.monotonic() + deadline_s
    while True:
        try:
            if client.healthz() == {"status": "ok"}:
                return
        except Exception:
            if time.monotonic() >= deadline:
                raise
        time.sleep(0.1)


def run_smoke(genes: int, samples: int, B: int, pools: int, ranks: int,
              backend: str) -> int:
    X, _ = synthetic_expression(
        genes, samples, n_class1=samples // 2, de_fraction=0.1, seed=5)
    labels = two_class_labels(samples // 2, samples - samples // 2)
    direct = pmaxT(X, labels, B=B, seed=17)

    proc, base_url = _start_server(pools, ranks, backend)
    try:
        client = ServiceClient(base_url)
        _wait_healthy(client)
        print(f"healthz ok at {base_url}")

        submitted = client.submit_pmaxt(X, labels, B=B, seed=17)
        print(f"submitted {submitted['id']} (state {submitted['state']})")
        doc = client.wait(submitted["id"], timeout=300)
        result = doc["result"]

        # JSON float round-trip is exact for finite doubles: the wire
        # result must equal the in-process one bit for bit.
        checks = {
            "teststat": result["teststat"] == direct.teststat.tolist(),
            "rawp": result["rawp"] == direct.rawp.tolist(),
            "adjp": result["adjp"] == direct.adjp.tolist(),
            "order": result["order"] == direct.order.tolist(),
            "nperm": result["nperm"] == direct.nperm,
        }
        for name, ok in checks.items():
            print(f"bit-identity {name}: {'ok' if ok else 'MISMATCH'}")
        if not all(checks.values()):
            return 1
        sig = int(np.sum(direct.adjp <= 0.05))
        print(f"pmaxT {genes}x{samples} B={doc['result']['nperm']}: "
              f"{sig} genes at FWER 0.05, served by pool {doc['pool']}")

        stats = client.statsz()
        if stats["pools"] != pools or stats["jobs_done"] < 1:
            print(f"statsz MISMATCH: {stats}")
            return 1
        print(f"statsz ok: pools={stats['pools']} "
              f"jobs_done={stats['jobs_done']} "
              f"jobs_per_s={stats['jobs_per_s']:.2f}")
        print("service smoke: PASS")
        return 0
    finally:
        proc.terminate()
        try:
            proc.wait(timeout=15)
        except subprocess.TimeoutExpired:
            proc.kill()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="End-to-end service smoke: serve subprocess, HTTP "
        "submit/poll, bit-identity vs direct pmaxT.")
    parser.add_argument("--genes", type=int, default=DEFAULT_GENES)
    parser.add_argument("--samples", type=int, default=DEFAULT_SAMPLES)
    parser.add_argument("--b", type=int, default=DEFAULT_B, dest="B")
    parser.add_argument("--pools", type=int, default=DEFAULT_POOLS)
    parser.add_argument("--ranks", type=int, default=DEFAULT_RANKS)
    parser.add_argument("--backend", default=DEFAULT_BACKEND)
    args = parser.parse_args(argv)
    return run_smoke(args.genes, args.samples, args.B, args.pools,
                     args.ranks, args.backend)


if __name__ == "__main__":
    raise SystemExit(main())
